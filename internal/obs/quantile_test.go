package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// quantileQs is the ladder every quantile test checks.
var quantileQs = []float64{0, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1}

// TestQuantileMergeEqualsConcatenated is the merge/quantile contract:
// Quantile over a merge of shard registries is bit-identical to
// Quantile over one registry fed the concatenated sample stream,
// because the estimator depends only on (buckets, count, min, max),
// all of which merge losslessly. Shards observe concurrently so the
// property also holds under -race.
func TestQuantileMergeEqualsConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shardCount := 1 + rng.Intn(6)
		streams := make([][]float64, shardCount)
		for i := range streams {
			n := rng.Intn(200)
			streams[i] = make([]float64, n)
			for j := range streams[i] {
				// Mix tiny, mid and huge values across many buckets.
				streams[i][j] = math.Exp2(rng.Float64()*40 - 2)
			}
		}

		// Reference: one registry over the concatenated stream.
		ref := NewRegistry()
		for _, st := range streams {
			for _, v := range st {
				ref.Observe("lat.ns", v)
			}
		}

		// Shards observed concurrently, then merged in fixed order.
		shards := make([]*Registry, shardCount)
		var wg sync.WaitGroup
		for i, st := range streams {
			shards[i] = NewRegistry()
			wg.Add(1)
			go func(r *Registry, vals []float64) {
				defer wg.Done()
				for _, v := range vals {
					r.Observe("lat.ns", v)
				}
			}(shards[i], st)
		}
		wg.Wait()
		merged := NewRegistry()
		for _, sh := range shards {
			merged.Merge(sh)
		}

		for _, q := range quantileQs {
			got, want := merged.Quantile("lat.ns", q), ref.Quantile("lat.ns", q)
			if got != want {
				t.Fatalf("trial %d: Quantile(%g) merged=%g concatenated=%g", trial, q, got, want)
			}
		}
		// And the Snapshot quantile fields agree the same way.
		ms, rs := merged.Snapshot(), ref.Snapshot()
		if len(ms.Hists) != len(rs.Hists) {
			t.Fatalf("trial %d: hist counts differ", trial)
		}
		for i := range ms.Hists {
			m, r := ms.Hists[i], rs.Hists[i]
			if m.P50 != r.P50 || m.P90 != r.P90 || m.P95 != r.P95 || m.P99 != r.P99 {
				t.Fatalf("trial %d: snapshot quantiles diverge: %+v vs %+v", trial, m, r)
			}
		}
	}
}

// TestQuantileBounds: quantiles stay inside [min, max], are monotone in
// q, and q=1 returns the exact max.
func TestQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewRegistry()
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 1e9
		g.Observe("h", v)
		min, max = math.Min(min, v), math.Max(max, v)
	}
	prev := math.Inf(-1)
	for _, q := range quantileQs {
		v := g.Quantile("h", q)
		if v < min || v > max {
			t.Fatalf("Quantile(%g)=%g outside [%g,%g]", q, v, min, max)
		}
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
	if got := g.Quantile("h", 1); got != max {
		t.Fatalf("Quantile(1)=%g, want exact max %g", got, max)
	}
	if got := g.Quantile("absent", 0.5); got != 0 {
		t.Fatalf("absent histogram quantile = %g, want 0", got)
	}
	var nilReg *Registry
	if got := nilReg.Quantile("h", 0.5); got != 0 {
		t.Fatalf("nil registry quantile = %g, want 0", got)
	}
}
