package obs

import (
	"strings"
	"testing"
)

func expoRegistry() *Registry {
	g := NewRegistry()
	g.Add("cl.bytes.total", 4096)
	g.Add("runner.experiments", 22)
	g.Set("sched.workers", 8)
	for _, v := range []float64{1, 2, 4, 8, 1024, 1024, 4096} {
		g.Observe("kernel.ns:square", v)
	}
	return g
}

// TestWriteOpenMetricsRoundTrip: the encoder's output must satisfy its
// own validating parser, carry every family, and expose cumulative
// buckets ending in +Inf == count.
func TestWriteOpenMetricsRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := expoRegistry().Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("self-parse failed: %v\n%s", err, out)
	}
	byName := map[string]ExpoFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["cl_bytes_total"]; f.Type != "counter" || f.Samples != 1 {
		t.Fatalf("counter family = %+v\n%s", f, out)
	}
	if f := byName["sched_workers"]; f.Type != "gauge" || f.Samples != 1 {
		t.Fatalf("gauge family = %+v\n%s", f, out)
	}
	h, ok := byName["kernel_ns:square"]
	if !ok || h.Type != "histogram" {
		t.Fatalf("histogram family missing: %v\n%s", fams, out)
	}
	// 6 distinct non-empty buckets + the +Inf bucket + _sum + _count.
	if h.Samples != 9 {
		t.Fatalf("histogram samples = %d, want 9\n%s", h.Samples, out)
	}
	for _, want := range []string{
		"cl_bytes_total_total 4096",
		"sched_workers 8",
		`kernel_ns:square_bucket{le="+Inf"} 7`,
		"kernel_ns:square_count 7",
		"kernel_ns:square_sum 6159",
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
}

func TestExpoName(t *testing.T) {
	cases := map[string]string{
		"kernel.ns:square":   "kernel_ns:square",
		"cache.l1.core3.hit": "cache_l1_core3_hit",
		"9lives":             "_9lives",
		"ok_name":            "ok_name",
		"":                   "_",
	}
	for in, want := range cases {
		if got := ExpoName(in); got != want {
			t.Fatalf("ExpoName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestExpoNameCollision: two registry names that sanitize identically
// must not produce duplicate families.
func TestExpoNameCollision(t *testing.T) {
	g := NewRegistry()
	g.Add("a.b", 1)
	g.Add("a/b", 2) // both sanitize to a_b; the encoder must disambiguate
	var b strings.Builder
	if err := g.Snapshot().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("collided names produced invalid exposition: %v\n%s", err, b.String())
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":       "# TYPE x counter\nx_total 1\n",
		"undeclared sample": "# TYPE x counter\nx_total 1\ny 2\n# EOF\n",
		"duplicate family":  "# TYPE x counter\n# TYPE x counter\nx_total 1\n# EOF\n",
		"negative counter":  "# TYPE x counter\nx_total -1\n# EOF\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 5` + "\n" + `h_bucket{le="4"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 5\n# EOF\n",
		"inf mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="2"} 5` + "\n" + `h_bucket{le="+Inf"} 5` + "\nh_sum 1\nh_count 6\n# EOF\n",
		"unordered bounds": "# TYPE h histogram\n" +
			`h_bucket{le="4"} 1` + "\n" + `h_bucket{le="2"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 2\n# EOF\n",
		"content after EOF": "# TYPE x counter\nx_total 1\n# EOF\nx_total 2\n",
		"empty":             "",
	}
	for name, doc := range cases {
		if _, err := ParseExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: parser accepted malformed document:\n%s", name, doc)
		}
	}
	if err := ValidateExposition(strings.NewReader("# EOF\n")); err == nil {
		t.Error("ValidateExposition accepted a family-free document")
	}
}
