package obs

import (
	"encoding/json"
	"io"
	"strconv"

	"clperf/internal/units"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Timestamps and durations are in
// microseconds, per the format.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace accumulates trace events plus the thread-name metadata
// that labels each track.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`

	tids map[string]int // "pid/track" -> tid
}

// NewChromeTrace returns an empty trace.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{DisplayTimeUnit: "ns", tids: map[string]int{}}
}

// Tid returns the thread id for the named track under pid, emitting the
// thread_name metadata event on first use. Tids are dense per trace, in
// first-use order.
func (t *ChromeTrace) Tid(pid int, track string) int {
	key := strconv.Itoa(pid) + "/" + track
	if tid, ok := t.tids[key]; ok {
		return tid
	}
	tid := len(t.tids) + 1
	t.tids[key] = tid
	t.TraceEvents = append(t.TraceEvents, TraceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]string{"name": track},
	})
	return tid
}

// Process emits the process_name metadata event for pid.
func (t *ChromeTrace) Process(pid int, name string) {
	t.TraceEvents = append(t.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]string{"name": name},
	})
}

// Slice appends one complete ("X") event on the given track.
func (t *ChromeTrace) Slice(pid int, track, name, cat string, start, end units.Duration, args map[string]string) {
	t.TraceEvents = append(t.TraceEvents, TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  start.Microseconds(),
		Dur: (end - start).Microseconds(),
		PID: pid, TID: t.Tid(pid, track),
		Args: args,
	})
}

// WriteJSON writes the trace as indented JSON.
func (t *ChromeTrace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// AppendChrome exports every recorded span as a complete event under
// pid. Spans without a track inherit their nearest ancestor's; span
// attributes become event args (plus the span kind).
func (r *Recorder) AppendChrome(t *ChromeTrace, pid int, process string) {
	if r == nil {
		return
	}
	if process != "" {
		t.Process(pid, process)
	}
	spans := r.Spans()
	for i := range spans {
		s := &spans[i]
		args := map[string]string{"kind": s.Kind.String()}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		t.Slice(pid, resolveTrack(spans, s.ID), s.Name, s.Kind.String(), s.Start, s.End, args)
	}
}

// Chrome exports the recorder's spans as a standalone trace.
func (r *Recorder) Chrome(pid int, process string) *ChromeTrace {
	t := NewChromeTrace()
	r.AppendChrome(t, pid, process)
	return t
}
