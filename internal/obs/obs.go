// Package obs is the runtime-wide observability layer of clperf:
// structured spans on the simulated clock, a metrics registry
// (counters, gauges, histograms), and exporters — Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing), a plain-text span
// tree with hot-path highlighting, and CSV for EXPERIMENTS.md figures.
//
// The paper's whole contribution is measurement (per-command profiling
// events, schedule timelines, transfer costs); obs makes the same
// quantities first-class inside the runtime instead of flat event lists.
// Every CommandQueue command and every device-model launch opens a typed
// span carrying its cost breakdown (dispatch, compute, memory floor,
// transfer bytes, SIMD lanes); spans nest (queue -> kernel -> phase) and
// attach to a per-context Recorder.
//
// The package is zero-dependency (stdlib + internal/units only) and every
// entry point is nil-receiver safe, so call sites thread a *Recorder
// through without branching and recording disabled costs nothing.
package obs

import (
	"sync"

	"clperf/internal/units"
)

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds.
const (
	// KindCommand is one command-queue command (clEnqueue*).
	KindCommand SpanKind = iota
	// KindKernel is a device-model kernel launch.
	KindKernel
	// KindPhase is one cost phase inside a launch (dispatch, compute,
	// memory floor).
	KindPhase
	// KindTransfer is a host<->device data movement.
	KindTransfer
	// KindRegion is a free-form user region.
	KindRegion
)

// String returns the kind's export name.
func (k SpanKind) String() string {
	switch k {
	case KindCommand:
		return "command"
	case KindKernel:
		return "kernel"
	case KindPhase:
		return "phase"
	case KindTransfer:
		return "transfer"
	default:
		return "region"
	}
}

// NoParent roots a span.
const NoParent = -1

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one timed operation against the simulated clock.
type Span struct {
	ID     int
	Parent int // span id, or NoParent
	Kind   SpanKind
	Name   string
	// Track names the export track (one Perfetto row); when empty the
	// span inherits its nearest ancestor's track.
	Track string
	Start units.Duration
	End   units.Duration
	Attrs []Attr
}

// Duration returns the span's length.
func (s *Span) Duration() units.Duration { return s.End - s.Start }

// Recorder collects spans and owns a metrics Registry. A nil *Recorder
// (and the nil *Registry it returns) is a valid no-op sink.
type Recorder struct {
	mu    sync.Mutex
	spans []Span
	reg   *Registry
}

// NewRecorder returns an empty recorder with a fresh registry.
func NewRecorder() *Recorder { return &Recorder{reg: NewRegistry()} }

// Registry returns the recorder's metrics registry (nil for a nil
// recorder; a nil registry is itself a no-op sink).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Record adds a complete span and returns its id (-1 on a nil recorder).
func (r *Recorder) Record(parent int, kind SpanKind, name string, start, end units.Duration) int {
	if r == nil {
		return -1
	}
	r.mu.Lock()
	id := len(r.spans)
	r.spans = append(r.spans, Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: start, End: end})
	r.mu.Unlock()
	return id
}

// Begin opens a span to be closed with End. Until then its End equals
// its Start.
func (r *Recorder) Begin(parent int, kind SpanKind, name string, start units.Duration) int {
	return r.Record(parent, kind, name, start, start)
}

// End closes a span opened with Begin.
func (r *Recorder) End(id int, end units.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if id >= 0 && id < len(r.spans) {
		r.spans[id].End = end
	}
	r.mu.Unlock()
}

// SetTrack assigns the span to a named export track.
func (r *Recorder) SetTrack(id int, track string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if id >= 0 && id < len(r.spans) {
		r.spans[id].Track = track
	}
	r.mu.Unlock()
}

// Annotate attaches a key/value attribute to the span.
func (r *Recorder) Annotate(id int, key, val string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if id >= 0 && id < len(r.spans) {
		r.spans[id].Attrs = append(r.spans[id].Attrs, Attr{Key: key, Val: val})
	}
	r.mu.Unlock()
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns a copy of all recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Merge appends a copy of src's spans to r — span ids and parent links
// are remapped past r's existing spans, so both recorders stay valid —
// and folds src's metrics into r's registry (see Registry.Merge). When
// prefix is non-empty every copied span lands on a namespaced track:
// explicit tracks become prefix+"/"+track and root spans with no track
// get prefix+"/main", so merged recorders never interleave spans from
// different sources on one export track. Merge is deterministic given a
// fixed call order. Nil r or src is a no-op.
func (r *Recorder) Merge(src *Recorder, prefix string) {
	if r == nil || src == nil || r == src {
		return
	}
	spans := src.Spans()
	r.mu.Lock()
	off := len(r.spans)
	for _, s := range spans {
		s.ID += off
		if s.Parent != NoParent {
			s.Parent += off
		}
		if prefix != "" {
			switch {
			case s.Track != "":
				s.Track = prefix + "/" + s.Track
			case s.Parent == NoParent:
				s.Track = prefix + "/main"
			}
		}
		// Attrs are shared slices; copy so later Annotate calls on either
		// recorder cannot alias.
		if len(s.Attrs) > 0 {
			s.Attrs = append([]Attr(nil), s.Attrs...)
		}
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
	r.reg.Merge(src.Registry())
}

// Reset drops all spans, keeping capacity, and clears the registry.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
	r.reg.Reset()
}

// track resolves the export track of span id, walking ancestors. Caller
// holds no lock; used by exporters over a Spans() copy.
func resolveTrack(spans []Span, id int) string {
	for id >= 0 && id < len(spans) {
		if spans[id].Track != "" {
			return spans[id].Track
		}
		id = spans[id].Parent
	}
	return "main"
}
