package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteTree renders the span forest as indented text, one line per
// span, root spans in recording order. A span whose duration is at
// least hotFrac of the total recorded time (the sum of root durations)
// is flagged "HOT" — the hot-path highlighting a profiler's flame view
// gives for free. hotFrac <= 0 defaults to 0.5.
func (r *Recorder) WriteTree(w io.Writer, hotFrac float64) {
	if r == nil {
		return
	}
	if hotFrac <= 0 {
		hotFrac = 0.5
	}
	spans := r.Spans()
	children := make(map[int][]int, len(spans))
	var roots []int
	var total float64
	for _, s := range spans {
		if s.Parent == NoParent {
			roots = append(roots, s.ID)
			total += float64(s.Duration())
		} else {
			children[s.Parent] = append(children[s.Parent], s.ID)
		}
	}
	var walk func(id, depth int)
	walk = func(id, depth int) {
		s := &spans[id]
		dur := float64(s.Duration())
		hot := ""
		if total > 0 && dur >= hotFrac*total && dur > 0 {
			hot = "  HOT"
		}
		attrs := ""
		if len(s.Attrs) > 0 {
			parts := make([]string, len(s.Attrs))
			for i, a := range s.Attrs {
				parts[i] = a.Key + "=" + a.Val
			}
			attrs = "  {" + strings.Join(parts, " ") + "}"
		}
		fmt.Fprintf(w, "%s%-8s %s  [%v +%v]%s%s\n",
			strings.Repeat("  ", depth), s.Kind, s.Name, s.Start, s.Duration(), attrs, hot)
		for _, c := range children[id] {
			walk(c, depth+1)
		}
	}
	for _, id := range roots {
		walk(id, 0)
	}
}
