package obs

import (
	"strings"
	"testing"
)

func TestRecorderSpansNest(t *testing.T) {
	rec := NewRecorder()
	root := rec.Record(NoParent, KindCommand, "clEnqueueNDRangeKernel:square", 0, 100)
	rec.SetTrack(root, "queue")
	kid := rec.Record(root, KindPhase, "compute", 0, 80)
	rec.Annotate(kid, "workers", "12")

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Parent != root {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, root)
	}
	if spans[0].Duration() != 100 || spans[1].Duration() != 80 {
		t.Fatalf("durations = %v, %v", spans[0].Duration(), spans[1].Duration())
	}
	if got := resolveTrack(spans, kid); got != "queue" {
		t.Fatalf("child track = %q, want inherited %q", got, "queue")
	}
	if len(spans[1].Attrs) != 1 || spans[1].Attrs[0].Key != "workers" {
		t.Fatalf("attrs = %v", spans[1].Attrs)
	}
}

func TestBeginEnd(t *testing.T) {
	rec := NewRecorder()
	id := rec.Begin(NoParent, KindRegion, "r", 10)
	rec.End(id, 35)
	if d := rec.Spans()[0].Duration(); d != 25 {
		t.Fatalf("duration = %v, want 25", d)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var rec *Recorder
	id := rec.Record(NoParent, KindCommand, "x", 0, 1)
	if id != -1 {
		t.Fatalf("nil Record id = %d, want -1", id)
	}
	rec.End(id, 2)
	rec.SetTrack(id, "t")
	rec.Annotate(id, "k", "v")
	rec.Reset()
	if rec.Len() != 0 || rec.Spans() != nil {
		t.Fatal("nil recorder should report no spans")
	}
	if rec.Registry() != nil {
		t.Fatal("nil recorder registry should be nil")
	}
	// The nil registry must also swallow everything.
	reg := rec.Registry()
	reg.Add("c", 1)
	reg.Set("g", 1)
	reg.Observe("h", 1)
	if reg.Counter("c") != 0 || reg.Gauge("g") != 0 {
		t.Fatal("nil registry should read as zero")
	}
	if s := reg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
}

func TestResetKeepsNothing(t *testing.T) {
	rec := NewRecorder()
	rec.Record(NoParent, KindCommand, "x", 0, 1)
	rec.Registry().Add("c", 3)
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatalf("spans after reset = %d", rec.Len())
	}
	if rec.Registry().Counter("c") != 0 {
		t.Fatal("counter survived reset")
	}
}

func TestWriteTreeHotPath(t *testing.T) {
	rec := NewRecorder()
	root := rec.Record(NoParent, KindKernel, "launch", 0, 100)
	rec.Record(root, KindPhase, "compute", 0, 90)
	rec.Record(root, KindPhase, "dispatch", 0, 5)

	var b strings.Builder
	rec.WriteTree(&b, 0.5)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "compute") || !strings.Contains(lines[1], "HOT") {
		t.Fatalf("compute line should be HOT: %q", lines[1])
	}
	if strings.Contains(lines[2], "HOT") {
		t.Fatalf("dispatch line should not be HOT: %q", lines[2])
	}
	if !strings.HasPrefix(lines[1], "  ") {
		t.Fatalf("child should be indented: %q", lines[1])
	}
}

func TestSpansCSV(t *testing.T) {
	rec := NewRecorder()
	root := rec.Record(NoParent, KindCommand, "cmd,with,commas", 0, 10)
	rec.SetTrack(root, "queue")
	var b strings.Builder
	rec.WriteSpansCSV(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,parent,kind,") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], `"cmd,with,commas"`) {
		t.Fatalf("name not escaped: %q", lines[1])
	}
}
