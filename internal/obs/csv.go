package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteCSV writes the snapshot as one flat CSV: histograms contribute
// their summary statistics (count, sum, min, mean and the p50/p90/
// p95/p99 quantile ladder), counters and gauges a single value. The
// schema is stable for EXPERIMENTS.md figure pipelines:
//
//	kind,name,count,value,min,mean,p50,p90,p95,p99,max
func (s Snapshot) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "kind,name,count,value,min,mean,p50,p90,p95,p99,max")
	for _, m := range s.Counters {
		fmt.Fprintf(w, "counter,%s,,%g,,,,,,,\n", csvEscape(m.Name), m.Value)
	}
	for _, m := range s.Gauges {
		fmt.Fprintf(w, "gauge,%s,,%g,,,,,,,\n", csvEscape(m.Name), m.Value)
	}
	for _, h := range s.Hists {
		fmt.Fprintf(w, "hist,%s,%d,%g,%g,%g,%g,%g,%g,%g,%g\n",
			csvEscape(h.Name), h.Count, h.Sum, h.Min, h.Mean, h.P50, h.P90, h.P95, h.P99, h.Max)
	}
}

// WriteSpansCSV writes every recorded span as one CSV row.
func (r *Recorder) WriteSpansCSV(w io.Writer) {
	fmt.Fprintln(w, "id,parent,kind,track,name,start_ns,end_ns,dur_ns")
	if r == nil {
		return
	}
	spans := r.Spans()
	for i := range spans {
		s := &spans[i]
		fmt.Fprintf(w, "%d,%d,%s,%s,%s,%g,%g,%g\n",
			s.ID, s.Parent, s.Kind, csvEscape(resolveTrack(spans, s.ID)),
			csvEscape(s.Name), float64(s.Start), float64(s.End), float64(s.Duration()))
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
