package obs

import (
	"strings"
	"testing"
)

// TestWriteCSVGolden pins the full CSV schema byte-for-byte: counters
// and gauges one value each, histograms their summary row including the
// p50/p90/p95/p99 quantile ladder, names with delimiters escaped.
func TestWriteCSVGolden(t *testing.T) {
	g := NewRegistry()
	g.Add("bytes.total", 4096)
	g.Add("weird,name", 2)
	g.Set("workers", 8)
	for _, v := range []float64{1, 2, 4, 8, 1024} {
		g.Observe("kernel.ns", v)
	}

	var b strings.Builder
	g.Snapshot().WriteCSV(&b)

	want := strings.Join([]string{
		"kind,name,count,value,min,mean,p50,p90,p95,p99,max",
		"counter,bytes.total,,4096,,,,,,,",
		`counter,"weird,name",,2,,,,,,,`,
		"gauge,workers,,8,,,,,,,",
		"hist,kernel.ns,5,1039,1,207.8,8,1024,1024,1024,1024",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("CSV mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteCSVEmptyHistogram: a histogram that was created but never
// observed must still render a well-formed row, not NaN/Inf cells.
func TestWriteCSVEmptyHistogram(t *testing.T) {
	var s Snapshot
	s.Hists = append(s.Hists, HistStat{Name: "empty"})
	var b strings.Builder
	s.WriteCSV(&b)
	if !strings.Contains(b.String(), "hist,empty,0,0,0,0,0,0,0,0,0") {
		t.Fatalf("empty histogram row malformed:\n%s", b.String())
	}
}
