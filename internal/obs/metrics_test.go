package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	g := NewRegistry()
	g.Add("cl.bytes.total", 100)
	g.Add("cl.bytes.total", 28)
	g.Set("sched.workers", 12)
	g.Set("sched.workers", 24) // last write wins
	if v := g.Counter("cl.bytes.total"); v != 128 {
		t.Fatalf("counter = %g, want 128", v)
	}
	if v := g.Gauge("sched.workers"); v != 24 {
		t.Fatalf("gauge = %g, want 24", v)
	}
}

func TestHistogramStats(t *testing.T) {
	g := NewRegistry()
	for _, v := range []float64{1, 2, 4, 8, 1024} {
		g.Observe("kernel.ns:square", v)
	}
	s := g.Snapshot()
	if len(s.Hists) != 1 {
		t.Fatalf("hists = %d", len(s.Hists))
	}
	h := s.Hists[0]
	if h.Name != "kernel.ns:square" || h.Count != 5 {
		t.Fatalf("hist = %+v", h)
	}
	if h.Sum != 1039 || h.Min != 1 || h.Max != 1024 {
		t.Fatalf("sum/min/max = %g/%g/%g", h.Sum, h.Min, h.Max)
	}
	if math.Abs(h.Mean-1039.0/5) > 1e-9 {
		t.Fatalf("mean = %g", h.Mean)
	}
	// Quantiles are bucket-quantized upper bounds, clamped to the max,
	// and must be ordered.
	if h.P50 > h.P95 || h.P95 > h.Max {
		t.Fatalf("quantiles out of order: p50=%g p95=%g max=%g", h.P50, h.P95, h.Max)
	}
	if h.P50 < h.Min {
		t.Fatalf("p50 below min: %g < %g", h.P50, h.Min)
	}
}

func TestSnapshotSorted(t *testing.T) {
	g := NewRegistry()
	g.Add("z", 1)
	g.Add("a", 1)
	g.Set("m", 1)
	g.Set("b", 1)
	s := g.Snapshot()
	if s.Counters[0].Name != "a" || s.Counters[1].Name != "z" {
		t.Fatalf("counters unsorted: %v", s.Counters)
	}
	if s.Gauges[0].Name != "b" || s.Gauges[1].Name != "m" {
		t.Fatalf("gauges unsorted: %v", s.Gauges)
	}
}

func TestSnapshotCSV(t *testing.T) {
	g := NewRegistry()
	g.Add("bytes", 64)
	g.Observe("lat", 10)
	var b strings.Builder
	g.Snapshot().WriteCSV(&b)
	out := b.String()
	if !strings.HasPrefix(out, "kind,name,count,value,min,mean,p50,p90,p95,p99,max\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "counter,bytes,,64") {
		t.Fatalf("counter row missing:\n%s", out)
	}
	if !strings.Contains(out, "hist,lat,1,10") {
		t.Fatalf("hist row missing:\n%s", out)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{{0, 0}, {0.5, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {math.MaxFloat64, numBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Fatalf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}
