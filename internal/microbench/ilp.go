// Package microbench implements the paper's two microbenchmark families:
// the ILP kernels of Figure 6 (identical op and memory counts, varying only
// the number of independent dependence chains) and the MBench1-8
// vectorization benchmarks of Figure 10 (identical computations expressed
// in OpenCL and as OpenMP loops, differing only in how the two compilers'
// vectorizers treat them).
package microbench

import (
	"fmt"

	"clperf/internal/ir"
)

// ILPTrips is the dependence-chain length (loop trip count) of the ILP
// kernels: long enough that the chain, not the pipeline fill, dominates.
const ILPTrips = 256

// ILPKernel builds the Figure 6 microbenchmark with the given number of
// independent chains. Every variant executes the same loop count and, per
// chain, two dependent multiplies per iteration; only the number of chains
// that can issue in parallel — the ILP — varies.
func ILPKernel(chains int) *ir.Kernel {
	if chains < 1 {
		chains = 1
	}
	accs := make([]string, chains)
	body := make([]ir.Stmt, 0, chains)
	for c := range accs {
		accs[c] = fmt.Sprintf("acc%d", c)
		// Two dependent multiplies per chain per iteration.
		body = append(body,
			ir.Set(accs[c], ir.Mul(ir.Mul(ir.V(accs[c]), ir.V("m1")), ir.V("m2"))),
		)
	}
	stmts := []ir.Stmt{
		ir.Set("m1", ir.LoadF("in", ir.Gid(0))),
		ir.Set("m2", ir.LoadF("in2", ir.Gid(0))),
	}
	for _, a := range accs {
		stmts = append(stmts, ir.Set(a, ir.F(1)))
	}
	stmts = append(stmts, ir.For{
		Var: "t", Start: ir.I(0), End: ir.I(ILPTrips), Step: ir.I(1), Body: body,
	})
	sum := ir.Expr(ir.V(accs[0]))
	for _, a := range accs[1:] {
		sum = ir.Add(sum, ir.V(a))
	}
	stmts = append(stmts, ir.StoreF("out", ir.Gid(0), sum))
	return &ir.Kernel{
		Name:    fmt.Sprintf("ilp%d", chains),
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("in2"), ir.Buf("out")},
		Body:    stmts,
	}
}

// ILPFlopsPerItem returns the flop count of one ILPKernel(chains) workitem:
// two multiplies per chain per trip plus the final combining adds.
func ILPFlopsPerItem(chains int) float64 {
	return float64(2*chains*ILPTrips) + float64(chains-1)
}

// MakeILPArgs builds inputs for an ILP kernel over n workitems. Multiplier
// values near 1 keep the float32 accumulators in range for any chain
// length.
func MakeILPArgs(n int) *ir.Args {
	in := ir.NewBufferF32("in", n)
	in2 := ir.NewBufferF32("in2", n)
	for i := 0; i < n; i++ {
		in.Set(i, 1.0001)
		in2.Set(i, 0.9999)
	}
	return ir.NewArgs().Bind("in", in).Bind("in2", in2).
		Bind("out", ir.NewBufferF32("out", n))
}
