package microbench

import (
	"math"
	"strings"
	"testing"

	"clperf/internal/ir"
)

// Every MBench must execute correctly and its OpenMP port must fail
// vectorization for exactly the documented reason, while the OpenCL model
// vectorizes it.
func TestMBenchesFunctionalAndVerdicts(t *testing.T) {
	for _, mb := range MBenches() {
		mb := mb
		t.Run(mb.Name, func(t *testing.T) {
			nd := ir.Range1D(mb.Items, mb.Local)
			args := mb.Make()
			if err := ir.ExecRange(mb.Kernel, args, nd, ir.ExecOptions{Parallel: 8}); err != nil {
				t.Fatalf("execute: %v", err)
			}
			if err := mb.Check(args); err != nil {
				t.Fatalf("check: %v", err)
			}

			clRep, err := ir.VectorizeOpenCL(mb.Kernel, args, nd)
			if err != nil {
				t.Fatal(err)
			}
			if !clRep.Vectorized {
				t.Fatalf("OpenCL must vectorize %s: %s", mb.Name, clRep.ScalarReason)
			}

			body := ir.SubstGlobalID(mb.Kernel.Body, 0, ir.Vi("i"))
			env := ir.NewStaticEnv(nd, args)
			loopRep := ir.VectorizeLoop(body, "i", env, args.Scalars)
			if loopRep.Vectorized {
				t.Fatalf("OpenMP must reject %s", mb.Name)
			}
			if !strings.Contains(loopRep.Reason, keyword(mb.WhyOpenMPFails)) {
				t.Fatalf("reason %q does not match documented cause %q",
					loopRep.Reason, mb.WhyOpenMPFails)
			}
		})
	}
}

// keyword extracts the distinctive fragment of the documented cause.
func keyword(why string) string {
	switch {
	case strings.Contains(why, "dependence"):
		return "data dependence"
	case strings.Contains(why, "store"):
		return "non-contiguous store"
	case strings.Contains(why, "access"):
		return "non-contiguous access"
	case strings.Contains(why, "control"):
		return "control flow"
	case strings.Contains(why, "nested"):
		return "nested loop"
	}
	return why
}

func TestILPKernelsFunctional(t *testing.T) {
	for chains := 1; chains <= 5; chains++ {
		k := ILPKernel(chains)
		if err := ir.Validate(k); err != nil {
			t.Fatalf("chains=%d: %v", chains, err)
		}
		const n = 256
		args := MakeILPArgs(n)
		if err := ir.ExecRange(k, args, ir.Range1D(n, 64), ir.ExecOptions{}); err != nil {
			t.Fatalf("chains=%d: %v", chains, err)
		}
		// Expected: sum of `chains` copies of (m1*m2)^trips.
		m := math.Pow(float64(float32(1.0001))*float64(float32(0.9999)), ILPTrips)
		want := float64(chains) * m
		got := args.Buffers["out"].Get(0)
		if math.Abs(got-want) > 1e-3*math.Abs(want) {
			t.Fatalf("chains=%d: out[0] = %v, want ~%v", chains, got, want)
		}
	}
}

func TestILPFlopsCount(t *testing.T) {
	// The flop helper must match the kernel's profile.
	for chains := 1; chains <= 4; chains++ {
		k := ILPKernel(chains)
		prof, err := ir.ProfileKernel(k, MakeILPArgs(64), ir.Range1D(64, 64),
			ir.LatencyTable{}, ir.MaxBranch)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := prof.Counts.Flops(), ILPFlopsPerItem(chains); got != want {
			t.Fatalf("chains=%d: profile flops %v, helper %v", chains, got, want)
		}
	}
}

// The microbenchmarks share their memory/loop structure; only the chain
// count differs (the paper's "identical number of memory accesses,
// computations, and loop iterations").
func TestILPKernelsShareStructure(t *testing.T) {
	var baseline ir.OpCounts
	for chains := 1; chains <= 5; chains++ {
		prof, err := ir.ProfileKernel(ILPKernel(chains), MakeILPArgs(64),
			ir.Range1D(64, 64), ir.LatencyTable{}, ir.MaxBranch)
		if err != nil {
			t.Fatal(err)
		}
		if chains == 1 {
			baseline = prof.Counts
			continue
		}
		if prof.Counts[ir.OpLoad] != baseline[ir.OpLoad] {
			t.Fatalf("chains=%d: load count changed: %v vs %v",
				chains, prof.Counts[ir.OpLoad], baseline[ir.OpLoad])
		}
		if prof.Counts[ir.OpStore] != baseline[ir.OpStore] {
			t.Fatalf("chains=%d: store count changed", chains)
		}
		wantMuls := baseline[ir.OpFMul] * float64(chains)
		if prof.Counts[ir.OpFMul] != wantMuls {
			t.Fatalf("chains=%d: fmul = %v, want %v", chains, prof.Counts[ir.OpFMul], wantMuls)
		}
	}
}

func TestPolyRefMatchesStmts(t *testing.T) {
	// The IR polynomial and the Go reference agree.
	k := &ir.Kernel{
		Name:    "poly",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: append(
			[]ir.Stmt{ir.Set("x", ir.LoadF("in", ir.Gid(0)))},
			append(polyStmts("p", "x"),
				ir.StoreF("out", ir.Gid(0), ir.V("p")))...),
	}
	const n = 64
	in := ir.NewBufferF32("in", n)
	out := ir.NewBufferF32("out", n)
	for i := 0; i < n; i++ {
		in.Set(i, float64(i-32)/16)
	}
	args := ir.NewArgs().Bind("in", in).Bind("out", out)
	if err := ir.ExecRange(k, args, ir.Range1D(n, 16), ir.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(polyRef(float32(in.Get(i))))
		if math.Abs(out.Get(i)-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Fatalf("out[%d] = %v, want %v", i, out.Get(i), want)
		}
	}
}
