package microbench

import (
	"fmt"
	"math"

	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// MBench is one Figure 10 benchmark: the same computation runs as an OpenCL
// kernel and, ported workitem-to-iteration, as an OpenMP loop. Each is
// constructed so the OpenCL implicit vectorizer packs it while the loop
// vectorizer's legality rules reject it for a different documented reason.
// A register-resident Horner polynomial supplies arithmetic density, so the
// throughput gap is the SIMD width rather than runtime noise.
type MBench struct {
	Name   string
	Kernel *ir.Kernel
	// Items is the launch size.
	Items int
	// Local is the workgroup size.
	Local int
	// FlopsPerItem for throughput reporting.
	FlopsPerItem float64
	// WhyOpenMPFails documents the legality rule the loop vectorizer trips
	// over (checked against ir.VectorizeLoop in tests).
	WhyOpenMPFails string
	// Make builds the inputs.
	Make func() *ir.Args
	// Check validates outputs after functional execution.
	Check func(args *ir.Args) error
}

const (
	mbItems = 1 << 20
	mbLocal = 256
	// polyDeg is the Horner chain length: each step is one multiply and one
	// add on registers.
	polyDeg = 24
)

// polyCoef returns the k-th deterministic polynomial coefficient.
func polyCoef(k int) float64 { return 1 / float64(k+2) }

// polyStmts emits dst = Horner polynomial of degree polyDeg evaluated at
// the float variable src (kept in registers: pure mul/add chain).
func polyStmts(dst, src string) []ir.Stmt {
	e := ir.Expr(ir.F(polyCoef(0)))
	for k := 1; k <= polyDeg; k++ {
		e = ir.Add(ir.Mul(e, ir.V(src)), ir.F(polyCoef(k)))
	}
	return []ir.Stmt{ir.Set(dst, e)}
}

// polyRef mirrors polyStmts in float32.
func polyRef(x float32) float32 {
	p := float32(polyCoef(0))
	for k := 1; k <= polyDeg; k++ {
		p = p*x + float32(polyCoef(k))
	}
	return p
}

// polyFlops is the flop count of one polynomial evaluation.
const polyFlops = 2 * polyDeg

// MBenches returns MBench1 through MBench8.
func MBenches() []*MBench {
	return []*MBench{
		mb1RMW2(),
		mb2RMW6(),
		mb3Strided(),
		mb4Branch(),
		mb5InnerChain(),
		mb6Gather(),
		mb7DivBranch(),
		mb8SaxpyRMW(),
	}
}

func mbVec(seed uint64, n int, lo, hi float64) *ir.Buffer {
	b := ir.NewBufferF32("v", n)
	kernels.FillUniform(b, seed, lo, hi)
	return b
}

// mb1: polynomial then a read-modify-write chain through memory within the
// iteration: a[i] = p(a[i]); a[i] = a[i]*b[i].
func mb1RMW2() *MBench {
	body := []ir.Stmt{ir.Set("x", ir.LoadF("a", ir.Gid(0)))}
	body = append(body, polyStmts("p", "x")...)
	body = append(body,
		ir.StoreF("a", ir.Gid(0), ir.V("p")),
		ir.StoreF("a", ir.Gid(0),
			ir.Mul(ir.LoadF("a", ir.Gid(0)), ir.LoadF("b", ir.Gid(0)))),
	)
	k := &ir.Kernel{
		Name:    "mbench1",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("b")},
		Body:    body,
	}
	return &MBench{
		Name: "MBench1", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   polyFlops + 1,
		WhyOpenMPFails: "assumed data dependence",
		Make: func() *ir.Args {
			return ir.NewArgs().
				Bind("a", mbVec(201, mbItems, -1, 1)).
				Bind("b", mbVec(202, mbItems, 0.9, 1.1))
		},
		Check: func(args *ir.Args) error {
			a0 := mbVec(201, mbItems, -1, 1)
			b := args.Buffers["b"]
			want := make([]float64, mbItems)
			for i := range want {
				want[i] = float64(polyRef(float32(a0.Get(i))) * float32(b.Get(i)))
			}
			return kernels.Compare("a", args.Buffers["a"], want, 1e-4)
		},
	}
}

// mb2: the Figure 11 kernel verbatim — six dependent FMULs through memory.
// Kept free of extra arithmetic so Figure 11's source dump matches the
// paper; its Figure 10 gap is correspondingly the smallest.
func mb2RMW6() *MBench {
	stmt := ir.StoreF("a", ir.Gid(0),
		ir.Mul(ir.LoadF("a", ir.Gid(0)), ir.LoadF("b", ir.Gid(0))))
	k := &ir.Kernel{
		Name:    "mbench2",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("b")},
		Body:    []ir.Stmt{stmt, stmt, stmt, stmt, stmt, stmt},
	}
	return &MBench{
		Name: "MBench2", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   6,
		WhyOpenMPFails: "assumed data dependence",
		Make: func() *ir.Args {
			return ir.NewArgs().
				Bind("a", mbVec(203, mbItems, 0.5, 1.5)).
				Bind("b", mbVec(204, mbItems, 0.95, 1.05))
		},
		Check: func(args *ir.Args) error {
			a0 := mbVec(203, mbItems, 0.5, 1.5)
			b := args.Buffers["b"]
			want := make([]float64, mbItems)
			for i := range want {
				v := float32(a0.Get(i))
				bb := float32(b.Get(i))
				for r := 0; r < 6; r++ {
					v *= bb
				}
				want[i] = float64(v)
			}
			return kernels.Compare("a", args.Buffers["a"], want, 1e-4)
		},
	}
}

// mb3: strided store — out[2i] = p(a[i]).
func mb3Strided() *MBench {
	body := []ir.Stmt{ir.Set("x", ir.LoadF("a", ir.Gid(0)))}
	body = append(body, polyStmts("p", "x")...)
	body = append(body,
		ir.StoreF("out", ir.Muli(ir.Gid(0), ir.I(2)), ir.V("p")))
	k := &ir.Kernel{
		Name:    "mbench3",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("out")},
		Body:    body,
	}
	return &MBench{
		Name: "MBench3", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   polyFlops,
		WhyOpenMPFails: "non-contiguous store",
		Make: func() *ir.Args {
			return ir.NewArgs().
				Bind("a", mbVec(205, mbItems, -1, 1)).
				Bind("out", ir.NewBufferF32("out", 2*mbItems))
		},
		Check: func(args *ir.Args) error {
			a := args.Buffers["a"]
			out := args.Buffers["out"]
			for i := 0; i < mbItems; i += 997 {
				want := float64(polyRef(float32(a.Get(i))))
				if got := out.Get(2 * i); math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
					return mbErr("out", 2*i, got, want)
				}
			}
			return nil
		},
	}
}

// mb4: branchy — two different polynomials by the sign of a[i].
func mb4Branch() *MBench {
	then := polyStmts("y", "x")
	els := []ir.Stmt{ir.Set("y", ir.Mul(ir.F(-2), ir.V("x")))}
	k := &ir.Kernel{
		Name:    "mbench4",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("a", ir.Gid(0))),
			ir.If{
				Cond: ir.Bin{Op: ir.GtF, X: ir.V("x"), Y: ir.F(0)},
				Then: then,
				Else: els,
			},
			ir.StoreF("out", ir.Gid(0), ir.V("y")),
		},
	}
	return &MBench{
		Name: "MBench4", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   polyFlops / 2,
		WhyOpenMPFails: "control flow",
		Make: func() *ir.Args {
			return ir.NewArgs().
				Bind("a", mbVec(206, mbItems, -1, 1)).
				Bind("out", ir.NewBufferF32("out", mbItems))
		},
		Check: func(args *ir.Args) error {
			a := args.Buffers["a"]
			want := make([]float64, mbItems)
			for i := range want {
				x := float32(a.Get(i))
				if x > 0 {
					want[i] = float64(polyRef(x))
				} else {
					want[i] = float64(-2 * x)
				}
			}
			return kernels.Compare("out", args.Buffers["out"], want, 1e-4)
		},
	}
}

// mb5: an inner dependent-accumulation loop, so the OpenMP-parallel loop is
// not the innermost loop.
func mb5InnerChain() *MBench {
	const trips = 24
	k := &ir.Kernel{
		Name:    "mbench5",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("a", ir.Gid(0))),
			ir.Set("acc", ir.F(0)),
			ir.Loop("t", ir.I(0), ir.I(trips),
				ir.Set("acc", ir.Add(ir.Mul(ir.V("acc"), ir.F(0.5)), ir.V("x"))),
			),
			ir.StoreF("out", ir.Gid(0), ir.V("acc")),
		},
	}
	return &MBench{
		Name: "MBench5", Kernel: k, Items: mbItems / 4, Local: mbLocal,
		FlopsPerItem:   2 * trips,
		WhyOpenMPFails: "nested loop",
		Make: func() *ir.Args {
			n := mbItems / 4
			return ir.NewArgs().
				Bind("a", mbVec(207, n, -1, 1)).
				Bind("out", ir.NewBufferF32("out", n))
		},
		Check: func(args *ir.Args) error {
			a := args.Buffers["a"]
			n := a.Len()
			want := make([]float64, n)
			for i := range want {
				x := float32(a.Get(i))
				acc := float32(0)
				for t := 0; t < trips; t++ {
					acc = acc*0.5 + x
				}
				want[i] = float64(acc)
			}
			return kernels.Compare("out", args.Buffers["out"], want, 1e-4)
		},
	}
}

// mb6: gather — out[i] = p(a[idx[i]]).
func mb6Gather() *MBench {
	body := []ir.Stmt{
		ir.Set("j", ir.LoadI("idx", ir.Gid(0))),
		ir.Set("x", ir.LoadF("a", ir.Vi("j"))),
	}
	body = append(body, polyStmts("p", "x")...)
	body = append(body, ir.StoreF("out", ir.Gid(0), ir.V("p")))
	k := &ir.Kernel{
		Name:    "mbench6",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.BufI("idx"), ir.Buf("out")},
		Body:    body,
	}
	return &MBench{
		Name: "MBench6", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   polyFlops,
		WhyOpenMPFails: "non-contiguous access",
		Make: func() *ir.Args {
			idx := ir.NewBufferI32("idx", mbItems)
			for i := 0; i < mbItems; i++ {
				idx.Set(i, float64((i*7+3)%mbItems))
			}
			return ir.NewArgs().
				Bind("a", mbVec(208, mbItems, -1, 1)).
				Bind("idx", idx).
				Bind("out", ir.NewBufferF32("out", mbItems))
		},
		Check: func(args *ir.Args) error {
			a := args.Buffers["a"]
			idx := args.Buffers["idx"]
			want := make([]float64, mbItems)
			for i := range want {
				want[i] = float64(polyRef(float32(a.Get(int(idx.Get(i))))))
			}
			return kernels.Compare("out", args.Buffers["out"], want, 1e-4)
		},
	}
}

// mb7: a rational (divide-heavy) step under a branch — the OpenCL compiler
// masks the branch and keeps the divides in vector registers, the loop
// vectorizer gives up on the control flow.
func mb7DivBranch() *MBench {
	then := polyStmts("y", "x")
	then = append(then,
		ir.Set("y", ir.Div(ir.Add(ir.V("y"), ir.F(2)),
			ir.Add(ir.Mul(ir.V("x"), ir.V("x")), ir.F(1)))))
	k := &ir.Kernel{
		Name:    "mbench7",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("a"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("a", ir.Gid(0))),
			ir.If{
				Cond: ir.Bin{Op: ir.GtF, X: ir.V("x"), Y: ir.F(0)},
				Then: then,
				Else: []ir.Stmt{ir.Set("y",
					ir.Call1(ir.Sqrt, ir.Add(ir.Mul(ir.V("x"), ir.V("x")), ir.F(4))))},
			},
			ir.StoreF("out", ir.Gid(0), ir.V("y")),
		},
	}
	return &MBench{
		Name: "MBench7", Kernel: k, Items: mbItems / 4, Local: mbLocal,
		FlopsPerItem:   polyFlops/2 + 2,
		WhyOpenMPFails: "control flow",
		Make: func() *ir.Args {
			n := mbItems / 4
			return ir.NewArgs().
				Bind("a", mbVec(209, n, -1, 1)).
				Bind("out", ir.NewBufferF32("out", n))
		},
		Check: func(args *ir.Args) error {
			a := args.Buffers["a"]
			n := a.Len()
			want := make([]float64, n)
			for i := range want {
				x := float32(a.Get(i))
				if x > 0 {
					want[i] = float64((polyRef(x) + 2) / (x*x + 1))
				} else {
					want[i] = math.Sqrt(float64(x*x + 4))
				}
			}
			return kernels.Compare("out", args.Buffers["out"], want, 1e-3)
		},
	}
}

// mb8: polynomial saxpy followed by a square, read-modify-writing y.
func mb8SaxpyRMW() *MBench {
	body := []ir.Stmt{ir.Set("xv", ir.LoadF("x", ir.Gid(0)))}
	body = append(body, polyStmts("p", "xv")...)
	body = append(body,
		ir.StoreF("y", ir.Gid(0),
			ir.Add(ir.Mul(ir.P("alpha"), ir.V("p")), ir.LoadF("y", ir.Gid(0)))),
		ir.StoreF("y", ir.Gid(0),
			ir.Mul(ir.LoadF("y", ir.Gid(0)), ir.LoadF("y", ir.Gid(0)))),
	)
	k := &ir.Kernel{
		Name:    "mbench8",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("x"), ir.Buf("y"), ir.Scalar("alpha")},
		Body:    body,
	}
	return &MBench{
		Name: "MBench8", Kernel: k, Items: mbItems, Local: mbLocal,
		FlopsPerItem:   polyFlops + 3,
		WhyOpenMPFails: "assumed data dependence",
		Make: func() *ir.Args {
			return ir.NewArgs().
				Bind("x", mbVec(210, mbItems, -1, 1)).
				Bind("y", mbVec(211, mbItems, -1, 1)).
				SetScalar("alpha", 0.75)
		},
		Check: func(args *ir.Args) error {
			x := args.Buffers["x"]
			y0 := mbVec(211, mbItems, -1, 1)
			want := make([]float64, mbItems)
			for i := range want {
				v := float32(0.75)*polyRef(float32(x.Get(i))) + float32(y0.Get(i))
				want[i] = float64(v * v)
			}
			return kernels.Compare("y", args.Buffers["y"], want, 1e-4)
		},
	}
}

func mbErr(name string, i int, got, want float64) error {
	return fmt.Errorf("%s[%d] = %v, want %v", name, i, got, want)
}
