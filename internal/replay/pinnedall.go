package replay

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"clperf/internal/cache"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/search"
)

// Affinity is the replay layer's fixed workgroup->core policy: workgroup
// g runs on core g (wrapped modulo the device's physical cores by
// cpu.Device.CoreMap) — the round-robin every zoo device shares. The
// policy is deliberately not a parameter: replayed results memoize under
// search.ReplayKey(trace digest, device fingerprint), which has no slot
// for an arbitrary affinity function, so one fixed policy keeps the
// content address sound.
func Affinity(g int) int { return g }

// Options tunes PinnedAll.
type Options struct {
	// NoReplay restores the pre-replay behavior: execute and simulate
	// the kernel once per device (the naive O(N x M) matrix), bitwise
	// identical results, M times the execution work. The -noreplay A/B
	// flag of oclbench lands here.
	NoReplay bool
	// Parallel bounds the execution workers of the single traced run
	// (0 = GOMAXPROCS).
	Parallel int
	// Workers bounds the per-device replay fan-out (0 = GOMAXPROCS).
	Workers int
	// MaxTraceBytes bounds the resident trace (0 = DefaultMaxTraceBytes);
	// larger launches stream through the Fanout ring instead.
	MaxTraceBytes int64
	// Cache, when non-nil, memoizes replayed results under
	// search.ReplayKey(trace digest, device fingerprint).
	Cache *search.Cache
	// Rec, when non-nil, resolves the recorder receiving replay.*
	// counters.
	Rec func() *obs.Recorder
}

// PinnedAll prices one launch on every device: the portability matrix's
// inner loop. The replay path executes the kernel once (Capture),
// then replays the trace against each device's cache simulator and cost
// model in parallel, sharing the trace read-only — O(1) executions plus
// M cheap replays where the naive path (NoReplay) pays M full
// execute-and-simulate launches. Either path returns results bitwise
// identical to d.LaunchPinned(k, args, nd, Affinity, nil) per device.
//
// The captured trace is returned alongside the results so callers can
// derive further estimates from it (EstimateOn) without re-executing; it
// is nil on the NoReplay path and on the streaming fallback — a launch
// whose trace exceeds the byte budget transparently degrades to the
// bounded-memory path: one more execution fanned out to every device's
// simulator through the pooled block ring.
func PinnedAll(devs []*cpu.Device, k *ir.Kernel, args *ir.Args, nd ir.NDRange, o Options) ([]*cpu.PinnedResult, *Trace, error) {
	if o.NoReplay {
		out := make([]*cpu.PinnedResult, len(devs))
		for i, d := range devs {
			r, err := d.LaunchPinned(k, args, nd, Affinity, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("replay: naive launch on %s: %w", d.Name(), err)
			}
			out[i] = r
		}
		return out, nil, nil
	}

	tr, err := Capture(k, args, nd, CaptureOptions{Parallel: o.Parallel, MaxBytes: o.MaxTraceBytes, Rec: o.Rec})
	var tooLarge *TooLargeError
	if errors.As(err, &tooLarge) {
		out, err := fanoutPinned(devs, k, args, nd, o)
		return out, nil, err
	}
	if err != nil {
		return nil, nil, err
	}

	out := make([]*cpu.PinnedResult, len(devs))
	errs := make([]error, len(devs))
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(devs) {
		workers = len(devs)
	}
	if workers <= 1 {
		for i, d := range devs {
			out[i], errs[i] = ReplayPinned(d, tr, o.Cache, o.Rec)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					out[i], errs[i] = ReplayPinned(devs[i], tr, o.Cache, o.Rec)
				}
			}()
		}
		for i := range devs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("replay: replay on %s: %w", devs[i].Name(), err)
		}
	}
	return out, tr, nil
}

// ReplayPinned prices a captured trace on one device: the trace streams
// through a fresh cache hierarchy for the device (HierSink) and the
// stall map prices through cpu.Device.PriceTraced — LaunchPinned minus
// the execution. The result is memoized in c (may be nil) under
// search.ReplayKey(tr.Digest, d.Fingerprint()); a Trace is immutable, so
// concurrent replays of one trace on different devices share it safely.
func ReplayPinned(d *cpu.Device, tr *Trace, c *search.Cache, rec func() *obs.Recorder) (*cpu.PinnedResult, error) {
	// The "pinned|" salt keeps cache-simulated replays and static
	// estimates (EstimateOn) of the same (trace, device) pair from
	// colliding in a shared cache: they produce different result types.
	key := search.ReplayKey(tr.Digest, "pinned|"+d.Fingerprint())
	val, hit, _, err := c.Do(key, func() (any, error) {
		h := cache.NewHierarchy(d.A)
		sink := NewHierSink(h, d.CoreMap(Affinity))
		tr.Replay(sink)
		return d.PriceTraced(tr.Kernel, tr.Args, tr.ND, Affinity, sink.Stalls, h)
	})
	reg := recorder(rec).Registry()
	if hit {
		reg.Add("replay.cache.hits", 1)
	} else {
		reg.Add("replay.replays", 1)
	}
	if err != nil {
		return nil, err
	}
	r, ok := val.(*cpu.PinnedResult)
	if !ok {
		return nil, fmt.Errorf("replay: cached value for %s.. has wrong type %T", key[:12], val)
	}
	return r, nil
}

// fanoutPinned is PinnedAll's bounded-memory fallback: one streaming
// execution fanned out to every device's simulator, then the shared
// pricing per device. Over-budget launches are not memoized (there is no
// resident trace to key replays against cheaply; the stream itself is
// the cost).
func fanoutPinned(devs []*cpu.Device, k *ir.Kernel, args *ir.Args, nd ir.NDRange, o Options) ([]*cpu.PinnedResult, error) {
	hiers := make([]*cache.Hierarchy, len(devs))
	sinks := make([]ir.BatchTracer, len(devs))
	hsinks := make([]*HierSink, len(devs))
	for i, d := range devs {
		hiers[i] = cache.NewHierarchy(d.A)
		hsinks[i] = NewHierSink(hiers[i], d.CoreMap(Affinity))
		sinks[i] = hsinks[i]
	}
	bytes, err := Fanout(k, args, nd, o.Parallel, sinks)
	reg := recorder(o.Rec).Registry()
	reg.Add("replay.fanouts", 1)
	reg.Add("replay.trace.bytes", float64(bytes))
	if err != nil {
		return nil, err
	}
	out := make([]*cpu.PinnedResult, len(devs))
	for i, d := range devs {
		r, err := d.PriceTraced(k, args, nd, Affinity, hsinks[i].Stalls, hiers[i])
		if err != nil {
			return nil, fmt.Errorf("replay: pricing on %s: %w", d.Name(), err)
		}
		out[i] = r
		reg.Add("replay.replays", 1)
	}
	return out, nil
}

// EstimateOn prices a captured trace's launch on one device's static
// cost model through the replay layer's content addressing: the result
// memoizes under search.ReplayKey(tr.Digest, deviceFP) and is bitwise
// the direct estimate's return (the model is a pure function of the
// launch the trace records — property-tested against Device.Estimate).
// R is the device's result type (*cpu.Result or *gpu.Result); estimate
// is typically the device's Estimate method.
func EstimateOn[R any](tr *Trace, deviceFP string, estimate func(*ir.Kernel, *ir.Args, ir.NDRange) (R, error), c *search.Cache, rec func() *obs.Recorder) (R, error) {
	key := search.ReplayKey(tr.Digest, deviceFP)
	val, hit, _, err := c.Do(key, func() (any, error) {
		return estimate(tr.Kernel, tr.Args, tr.ND)
	})
	reg := recorder(rec).Registry()
	if hit {
		reg.Add("replay.cache.hits", 1)
	} else {
		reg.Add("replay.estimates", 1)
	}
	var zero R
	if err != nil {
		return zero, err
	}
	r, ok := val.(R)
	if !ok {
		return zero, fmt.Errorf("replay: cached value for %s.. has wrong type %T", key[:12], val)
	}
	return r, nil
}
