// Package replay implements the trace-once / replay-many estimation
// pipeline behind the kernels x devices portability matrix.
//
// Executing a kernel functionally is device-independent: the lane-level
// access/op stream the v2 engine emits (internal/ir) depends only on the
// kernel, its arguments and the launch geometry. What differs per device
// is cheap by comparison — the cache-hierarchy simulation of that stream
// and the static cost model. A naive NxM matrix sweep re-executes every
// kernel once per device anyway, paying the expensive execution M times
// for M identical streams.
//
// This package splits the two phases. Capture executes a kernel x NDRange
// exactly once, storing the group-ordered access stream (global accesses
// plus barrier markers, exactly the records ir.ExecRange flushes to a
// tracer) as a compact Trace addressed by its content digest
// (search.TraceKey). ReplayPinned then prices the trace on any CPU device
// by streaming it through a fresh cache hierarchy and handing the stall
// map to cpu.Device.PriceTraced — the same post-simulation pricing
// LaunchPinned runs, so a replayed PinnedResult is bitwise identical to
// an executed one (property-tested in this package). PinnedAll fans a
// single trace out to a whole device zoo in parallel, sharing the trace
// read-only; replays are memoized under search.ReplayKey(trace digest,
// device fingerprint).
//
// Traces of large NDRanges are bounded: Capture enforces a byte budget,
// and PinnedAll falls back to Fanout (ring.go) — a spill-free pooled
// block ring that streams one execution's batches to every device's
// simulator concurrently without ever holding the whole trace resident.
package replay

import (
	"fmt"
	"runtime"
	"unsafe"

	"clperf/internal/cache"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/search"
)

// recBytes is the in-memory size of one trace record, the unit of the
// capture byte budget and the replay.trace.bytes counter.
const recBytes = int64(unsafe.Sizeof(ir.Access{}))

// DefaultMaxTraceBytes is Capture's byte budget when CaptureOptions
// leaves it zero: large enough for every matrix-experiment geometry,
// small enough that a runaway NDRange spills to the streaming path
// instead of holding gigabytes resident.
const DefaultMaxTraceBytes = 256 << 20

// Trace is one captured execution: the launch it came from and its
// group-ordered access stream. The stream is exactly what ir.ExecRange
// flushes to a tracer — per selected group, a BeginGroup marker followed
// by the group's records (global accesses and barrier markers) — so
// replaying it through a cache simulator observes the very stream a live
// traced execution would. A Trace is immutable after Capture; replays
// share it read-only.
type Trace struct {
	// Digest is the trace's content address (search.TraceKey): equal
	// digests mean equal streams, so replayed results memoize under
	// (Digest, device fingerprint).
	Digest string
	// Kernel, Args, ND are the captured launch. The local size is
	// resolved (capture rejects NULL-local geometries: devices resolve
	// those differently, which would make the stream device-dependent).
	Kernel *ir.Kernel
	Args   *ir.Args
	ND     ir.NDRange

	// Loads, Stores and Barriers summarize the stream's record mix.
	Loads, Stores, Barriers int64

	groups []int       // captured linear group ids, in flush order
	starts []int       // starts[i] offsets groups[i]'s records in recs
	recs   []ir.Access // all records, group-major
}

// NumGroups returns the number of captured workgroups.
func (t *Trace) NumGroups() int { return len(t.groups) }

// Records returns the total record count.
func (t *Trace) Records() int { return len(t.recs) }

// Bytes returns the resident size of the record stream.
func (t *Trace) Bytes() int64 { return int64(len(t.recs)) * recBytes }

// Replay delivers the captured stream to sink in the exact shape the
// execution engine delivers a live trace: BeginGroup then AccessBatch
// per captured group, in group order, including empty groups. The record
// slices alias the trace and must not be retained or written.
func (t *Trace) Replay(sink ir.BatchTracer) {
	for i, g := range t.groups {
		end := len(t.recs)
		if i+1 < len(t.starts) {
			end = t.starts[i+1]
		}
		sink.BeginGroup(g)
		sink.AccessBatch(g, t.recs[t.starts[i]:end])
	}
}

// TooLargeError reports a capture that exceeded its byte budget. The
// execution itself completed (buffers hold the kernel's outputs); only
// the trace was dropped. Callers stream instead (Fanout).
type TooLargeError struct {
	// Bytes is the full stream size the capture would have needed.
	Bytes, Max int64
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("replay: trace of %d bytes exceeds the %d-byte budget", e.Bytes, e.Max)
}

// CaptureOptions tunes Capture.
type CaptureOptions struct {
	// Parallel is the execution worker count (0 = GOMAXPROCS). The
	// captured stream is identical at any setting: the engine flushes
	// group buffers in ascending group order regardless.
	Parallel int
	// MaxBytes bounds the resident record stream (0 = DefaultMaxTraceBytes).
	MaxBytes int64
	// Rec, when non-nil, resolves the recorder receiving the
	// replay.trace.bytes / replay.traces counters.
	Rec func() *obs.Recorder
}

// captureTracer buffers the flushed stream into a Trace. All methods run
// on the engine's single flusher goroutine.
type captureTracer struct {
	t        *Trace
	max      int64
	bytes    int64 // bytes the full stream needs, kept counting past max
	overflow bool
}

func (c *captureTracer) BeginGroup(g int) {
	if c.overflow {
		return
	}
	c.t.groups = append(c.t.groups, g)
	c.t.starts = append(c.t.starts, len(c.t.recs))
}

// Access implements the streaming half of ir.Tracer. The engine always
// batches (captureTracer implements ir.BatchTracer), so this path only
// runs under a hypothetical non-batching driver; it must still capture
// faithfully.
func (c *captureTracer) Access(addr, size int64, write bool) {
	c.append([]ir.Access{{Addr: addr, Size: size, Write: write}})
}

func (c *captureTracer) AccessBatch(_ int, recs []ir.Access) { c.append(recs) }

func (c *captureTracer) append(recs []ir.Access) {
	c.bytes += int64(len(recs)) * recBytes
	if c.overflow {
		return
	}
	if c.bytes > c.max {
		// Past budget: drop the partial capture but keep counting bytes
		// so the error reports the full stream size. The engine offers a
		// tracer no way to abort the launch, and the execution is wanted
		// anyway (the fallback path reuses its compiled program).
		c.overflow = true
		c.t.groups = c.t.groups[:0]
		c.t.starts = c.t.starts[:0]
		c.t.recs = c.t.recs[:0]
		return
	}
	for _, a := range recs {
		switch {
		case a.Kind != ir.KindGlobal:
			c.t.Barriers++
		case a.Write:
			c.t.Stores++
		default:
			c.t.Loads++
		}
	}
	c.t.recs = append(c.t.recs, recs...)
}

// Capture executes the kernel over nd exactly once (through the default
// v2 engine, writing real results into the bound buffers) and returns
// the captured device-independent trace. The local size must be resolved
// — a NULL local would be resolved per device, splitting the stream.
// Exceeding the byte budget returns a *TooLargeError.
func Capture(k *ir.Kernel, args *ir.Args, nd ir.NDRange, o CaptureOptions) (*Trace, error) {
	if nd.LocalNull() {
		return nil, fmt.Errorf("replay: Capture %s: local size must be resolved", k.Name)
	}
	max := o.MaxBytes
	if max <= 0 {
		max = DefaultMaxTraceBytes
	}
	par := o.Parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	t := &Trace{
		Digest: search.TraceKey(k, args, nd),
		Kernel: k,
		Args:   args,
		ND:     nd,
	}
	ct := &captureTracer{t: t, max: max}
	if err := ir.ExecRange(k, args, nd, ir.ExecOptions{Tracer: ct, Parallel: par}); err != nil {
		return nil, fmt.Errorf("replay: capture of %s: %w", k.Name, err)
	}
	if ct.overflow {
		return nil, &TooLargeError{Bytes: ct.bytes, Max: max}
	}
	reg := recorder(o.Rec).Registry()
	reg.Add("replay.traces", 1)
	reg.Add("replay.trace.bytes", float64(t.Bytes()))
	return t, nil
}

// recorder resolves an optional recorder source (nil-safe: a nil
// *obs.Recorder's Registry drops writes).
func recorder(rec func() *obs.Recorder) *obs.Recorder {
	if rec == nil {
		return nil
	}
	return rec()
}

// HierSink drives one device's cache hierarchy from a trace stream: the
// replay-side counterpart of the simulator LaunchPinned attaches to a
// live execution. It accumulates per-core stalls through the same
// Hierarchy.AccessRange sequence as the sharded simulator's inline mode,
// so the stall map is bit-identical to cache.NewSharded / cache.NewSerial
// observing the same stream (their equivalence is property-tested in
// internal/cache; the end-to-end equality to LaunchPinned is
// property-tested here).
type HierSink struct {
	// Stalls is the accumulated per-core stall-cycle map, keyed by
	// physical core exactly as cache.Sim.Finish returns it.
	Stalls map[int]float64

	h      *cache.Hierarchy
	coreOf func(int) int
	group  int
}

// NewHierSink returns a sink simulating h. coreOf maps a linear
// workgroup index to a physical core (out-of-range cores clamp to 0, as
// in every cache.Sim).
func NewHierSink(h *cache.Hierarchy, coreOf func(int) int) *HierSink {
	return &HierSink{Stalls: map[int]float64{}, h: h, coreOf: coreOf}
}

// BeginGroup implements ir.Tracer.
func (s *HierSink) BeginGroup(g int) { s.group = g }

// Access implements ir.Tracer (single-record fallback; batch delivery is
// the operative path).
func (s *HierSink) Access(addr, size int64, write bool) {
	s.AccessBatch(s.group, []ir.Access{{Addr: addr, Size: size, Write: write}})
}

// AccessBatch implements ir.BatchTracer: one workgroup's records charged
// to its core. Empty batches leave the stall map untouched, matching the
// sharded simulator.
func (s *HierSink) AccessBatch(g int, recs []ir.Access) {
	if len(recs) == 0 {
		return
	}
	core := s.coreOf(g)
	if core < 0 || core >= s.h.Cores() {
		core = 0
	}
	s.Stalls[core] = s.h.AccessRange(core, recs, cache.StoreWriteFactor, s.Stalls[core])
}

var _ ir.BatchTracer = (*HierSink)(nil)
