package replay

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"clperf/internal/ir"
)

// Streaming fan-out: the spill-free path for launches whose trace would
// blow Capture's byte budget. One execution's flushed batches stream
// through a fixed ring of pooled record blocks to every sink
// concurrently, so memory stays bounded at ringBlocks live batches no
// matter how large the NDRange is — the same bounded free-list shape the
// engine's own traced-parallel driver uses for its record buffers.

// ringBlocks is the fan-out ring capacity: how many workgroup batches
// may be in flight between the executing producer and the slowest sink.
// Each per-sink channel holds ringBlocks slots, so with at most
// ringBlocks blocks in existence a publish never blocks on a channel —
// the producer only ever waits on the free list, and the slowest sink
// paces the whole ring.
const ringBlocks = 16

// fanBlock is one workgroup batch in flight to len(sinks) consumers. The
// last consumer to release it returns its buffer to the free pool.
type fanBlock struct {
	g    int
	recs []ir.Access
	refs int32
}

// fanTracer is the producer side: an ir.BatchTracer fed by the engine's
// in-order flusher. Every non-empty batch is copied once into a pooled
// block and published to all sinks; empty batches carry no records and
// are skipped (sinks receive only non-empty batches, which every
// cache-simulating sink ignores anyway).
type fanTracer struct {
	free  chan []ir.Access
	outs  []chan *fanBlock
	bytes int64

	// Streaming-tracer fallback state (mirrors cache.Sharded): records
	// buffer in scratch until the group ends, then flush as a batch.
	group   int
	scratch []ir.Access
}

func (f *fanTracer) BeginGroup(g int) {
	f.flushScratch()
	f.group = g
}

func (f *fanTracer) Access(addr, size int64, write bool) {
	f.scratch = append(f.scratch, ir.Access{Addr: addr, Size: size, Write: write})
}

func (f *fanTracer) AccessBatch(g int, recs []ir.Access) {
	if len(recs) == 0 {
		return
	}
	buf := <-f.free
	buf = append(buf[:0], recs...)
	f.bytes += int64(len(recs)) * recBytes
	blk := &fanBlock{g: g, recs: buf, refs: int32(len(f.outs))}
	for _, ch := range f.outs {
		ch <- blk
	}
}

func (f *fanTracer) flushScratch() {
	if len(f.scratch) == 0 {
		return
	}
	f.AccessBatch(f.group, f.scratch)
	f.scratch = f.scratch[:0]
}

// Fanout executes the kernel over nd exactly once, streaming each
// workgroup's records (in group order, as one batch per group) to every
// sink concurrently. Each sink observes the full stream on its own
// goroutine; distinct sinks never share one, so sinks need no locking.
// Returns the number of trace bytes streamed.
//
// par bounds the execution workers (0 = GOMAXPROCS). Peak trace memory
// is ringBlocks batches regardless of the NDRange.
func Fanout(k *ir.Kernel, args *ir.Args, nd ir.NDRange, par int, sinks []ir.BatchTracer) (int64, error) {
	if len(sinks) == 0 {
		return 0, fmt.Errorf("replay: Fanout %s: no sinks", k.Name)
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ft := &fanTracer{
		free: make(chan []ir.Access, ringBlocks),
		outs: make([]chan *fanBlock, len(sinks)),
	}
	for i := 0; i < ringBlocks; i++ {
		ft.free <- nil
	}
	var wg sync.WaitGroup
	for i, sink := range sinks {
		ch := make(chan *fanBlock, ringBlocks)
		ft.outs[i] = ch
		wg.Add(1)
		go func(sink ir.BatchTracer, ch chan *fanBlock) {
			defer wg.Done()
			for blk := range ch {
				sink.BeginGroup(blk.g)
				sink.AccessBatch(blk.g, blk.recs)
				if atomic.AddInt32(&blk.refs, -1) == 0 {
					ft.free <- blk.recs
				}
			}
		}(sink, ch)
	}

	execErr := ir.ExecRange(k, args, nd, ir.ExecOptions{Tracer: ft, Parallel: par})
	ft.flushScratch()
	for _, ch := range ft.outs {
		close(ch)
	}
	wg.Wait() // every sink saw the full (possibly truncated-by-error) stream
	if execErr != nil {
		return ft.bytes, fmt.Errorf("replay: fanout of %s: %w", k.Name, execErr)
	}
	return ft.bytes, nil
}
