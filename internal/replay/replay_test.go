package replay

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
	"clperf/internal/search"
)

// smallND maps every registered app (paper suite, extras, stencils) to a
// test-sized geometry with an explicit local size (Capture rejects NULL
// locals). The completeness check in testCases keeps this map honest: a
// new app in any registry fails the differential suite until it gets an
// entry here.
var smallND = map[string]ir.NDRange{
	"Square":         ir.Range1D(4096, 64),
	"Vectoraddition": ir.Range1D(4096, 64),
	"Matrixmul":      ir.Range2D(32, 64, 16, 16),
	"MatrixmulNaive": ir.Range2D(32, 64, 16, 16),
	"Reduction":      ir.Range1D(4096, 256),
	"Histogram":      ir.Range1D(4096, 128),
	"Prefixsum":      ir.Range1D(256, 256),
	"Blackscholes":   ir.Range2D(64, 64, 16, 16),
	"Binomialoption": ir.Range1D(2550, 255),
	"Transpose":      ir.Range2D(64, 64, 16, 16),
	"Convolution":    ir.Range2D(128, 32, 64, 1),
	"NBody":          ir.Range1D(512, 64),
	"DotProduct":     ir.Range1D(4096, 64),
	"Stencil5":       ir.Range2D(64, 64, 16, 16),
	"Stencil9":       ir.Range2D(64, 64, 16, 16),
}

type testCase struct {
	app *kernels.App
	nd  ir.NDRange
}

func testCases(t *testing.T) []testCase {
	t.Helper()
	apps := append(append(kernels.Registry(), kernels.ExtraRegistry()...),
		kernels.StencilRegistry()...)
	out := make([]testCase, 0, len(apps))
	for _, app := range apps {
		nd, ok := smallND[app.Name]
		if !ok {
			t.Fatalf("app %s has no small test geometry; add it to smallND", app.Name)
		}
		out = append(out, testCase{app, nd})
	}
	return out
}

// comparePinned asserts two PinnedResults are bitwise identical in the
// fields the portability matrix consumes: the priced Result and the
// per-core stall map. (The Hierarchy pointers differ by construction —
// each path simulates into its own.)
func comparePinned(t *testing.T, label string, direct, replayed *cpu.PinnedResult) {
	t.Helper()
	if !reflect.DeepEqual(direct.Result, replayed.Result) {
		t.Errorf("%s: Result differs:\ndirect:   %+v\nreplayed: %+v", label, direct.Result, replayed.Result)
	}
	if !reflect.DeepEqual(direct.StallCycles, replayed.StallCycles) {
		t.Errorf("%s: StallCycles differ:\ndirect:   %v\nreplayed: %v", label, direct.StallCycles, replayed.StallCycles)
	}
}

// TestReplayMatchesLaunchPinnedEveryApp is the central differential
// property: for every registered app on a spread of zoo devices, pricing
// a captured trace (ReplayPinned) is bitwise identical to executing with
// the live cache simulator (LaunchPinned). Each path executes on its own
// deterministic args, so non-idempotent kernels (Histogram's atomics)
// compare fairly.
func TestReplayMatchesLaunchPinnedEveryApp(t *testing.T) {
	zoo := arch.MatrixZoo()
	devices := []*cpu.Device{cpu.New(zoo[0]), cpu.New(zoo[2]), cpu.New(zoo[7])}
	for _, tc := range testCases(t) {
		tr, err := Capture(tc.app.Kernel, tc.app.Make(tc.nd), tc.nd, CaptureOptions{})
		if err != nil {
			t.Fatalf("%s: capture: %v", tc.app.Name, err)
		}
		for _, d := range devices {
			label := fmt.Sprintf("%s on %s", tc.app.Name, d.Name())
			direct, err := d.LaunchPinned(tc.app.Kernel, tc.app.Make(tc.nd), tc.nd, Affinity, nil)
			if err != nil {
				t.Fatalf("%s: direct: %v", label, err)
			}
			replayed, err := ReplayPinned(d, tr, nil, nil)
			if err != nil {
				t.Fatalf("%s: replay: %v", label, err)
			}
			comparePinned(t, label, direct, replayed)
		}
	}
}

// TestPinnedAllModesAgree checks the orchestrated path end to end: the
// replay pipeline, the -noreplay baseline and the forced streaming
// fallback (tiny byte budget) all produce bitwise identical results
// across the full zoo, serial and parallel. Run under -race this also
// exercises the concurrent replay workers and the fan-out ring.
func TestPinnedAllModesAgree(t *testing.T) {
	zoo := arch.MatrixZoo()
	devs := make([]*cpu.Device, len(zoo))
	for i, a := range zoo {
		devs[i] = cpu.New(a)
	}
	apps := []string{"Square", "Matrixmul", "DotProduct", "Stencil9"}
	for _, name := range apps {
		var tc testCase
		for _, c := range testCases(t) {
			if c.app.Name == name {
				tc = c
			}
		}
		naive, _, err := PinnedAll(devs, tc.app.Kernel, tc.app.Make(tc.nd), tc.nd,
			Options{NoReplay: true})
		if err != nil {
			t.Fatalf("%s: naive: %v", name, err)
		}
		modes := []struct {
			label string
			o     Options
		}{
			{"replay-serial", Options{Parallel: 1, Workers: 1}},
			{"replay-parallel", Options{Parallel: 4, Workers: 4, Cache: search.NewCache(0)}},
			{"fanout", Options{MaxTraceBytes: 64, Parallel: 4}}, // force streaming
		}
		for _, m := range modes {
			got, tr, err := PinnedAll(devs, tc.app.Kernel, tc.app.Make(tc.nd), tc.nd, m.o)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, m.label, err)
			}
			if m.label == "fanout" && tr != nil {
				t.Errorf("%s/%s: expected nil trace from the streaming path", name, m.label)
			}
			if len(got) != len(naive) {
				t.Fatalf("%s/%s: %d results, want %d", name, m.label, len(got), len(naive))
			}
			for i := range got {
				comparePinned(t, fmt.Sprintf("%s/%s on %s", name, m.label, devs[i].Name()),
					naive[i], got[i])
			}
		}
	}
}

// TestEstimateOnMatchesDirect checks the static-model half of the
// pipeline: a replayed estimate is bitwise the direct Device.Estimate
// result, for both device types, and memoizes under the replay key.
func TestEstimateOnMatchesDirect(t *testing.T) {
	cdev := cpu.New(arch.XeonE5645())
	gdev := gpu.New(arch.GTX580())
	c := search.NewCache(0)
	for _, tc := range testCases(t) {
		args := tc.app.Make(tc.nd)
		tr, err := Capture(tc.app.Kernel, args, tc.nd, CaptureOptions{})
		if err != nil {
			t.Fatalf("%s: capture: %v", tc.app.Name, err)
		}

		wantC, err := cdev.Estimate(tc.app.Kernel, args, tc.nd)
		if err != nil {
			t.Fatalf("%s: direct cpu estimate: %v", tc.app.Name, err)
		}
		gotC, err := EstimateOn(tr, cdev.Fingerprint(), cdev.Estimate, c, nil)
		if err != nil {
			t.Fatalf("%s: replayed cpu estimate: %v", tc.app.Name, err)
		}
		if !reflect.DeepEqual(wantC, gotC) {
			t.Errorf("%s: cpu estimate differs:\ndirect:   %+v\nreplayed: %+v", tc.app.Name, wantC, gotC)
		}

		wantG, err := gdev.Estimate(tc.app.Kernel, args, tc.nd)
		if err != nil {
			t.Fatalf("%s: direct gpu estimate: %v", tc.app.Name, err)
		}
		gotG, err := EstimateOn(tr, gdev.Fingerprint(), gdev.Estimate, c, nil)
		if err != nil {
			t.Fatalf("%s: replayed gpu estimate: %v", tc.app.Name, err)
		}
		if !reflect.DeepEqual(wantG, gotG) {
			t.Errorf("%s: gpu estimate differs:\ndirect:   %+v\nreplayed: %+v", tc.app.Name, wantG, gotG)
		}

		// Second call must hit the memo layer and return the same value.
		again, err := EstimateOn(tr, cdev.Fingerprint(), cdev.Estimate, c, nil)
		if err != nil {
			t.Fatalf("%s: memoized estimate: %v", tc.app.Name, err)
		}
		if again != gotC {
			t.Errorf("%s: memoized estimate returned a different value", tc.app.Name)
		}
	}
}

// collectSink records a delivered stream for comparison.
type collectSink struct {
	groups []int
	recs   [][]ir.Access
}

func (s *collectSink) BeginGroup(g int) { s.groups = append(s.groups, g) }
func (s *collectSink) Access(addr, size int64, write bool) {
	s.AccessBatch(s.groups[len(s.groups)-1], []ir.Access{{Addr: addr, Size: size, Write: write}})
}
func (s *collectSink) AccessBatch(g int, recs []ir.Access) {
	s.recs = append(s.recs, append([]ir.Access(nil), recs...))
}

// TestCaptureDeterministicAcrossParallelism: the captured stream (and so
// the digest-addressed trace) is identical at any worker count — the
// engine flushes group buffers in ascending group order regardless.
func TestCaptureDeterministicAcrossParallelism(t *testing.T) {
	app := kernels.Stencil5()
	nd := smallND[app.Name]
	var base *Trace
	for _, par := range []int{1, 2, 8} {
		tr, err := Capture(app.Kernel, app.Make(nd), nd, CaptureOptions{Parallel: par})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if base == nil {
			base = tr
			continue
		}
		if tr.Digest != base.Digest {
			t.Fatalf("par=%d: digest %s, want %s", par, tr.Digest, base.Digest)
		}
		var a, b collectSink
		base.Replay(&a)
		tr.Replay(&b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("par=%d: replayed stream differs from serial capture", par)
		}
	}
	if base.Records() == 0 || base.Loads == 0 || base.Stores == 0 {
		t.Fatalf("trace empty: %d records, %d loads, %d stores", base.Records(), base.Loads, base.Stores)
	}
	if base.Bytes() != int64(base.Records())*recBytes {
		t.Fatalf("Bytes() = %d, want %d", base.Bytes(), int64(base.Records())*recBytes)
	}
}

// TestFanoutDeliversIdenticalStreams: every fan-out sink observes the
// same per-group batches a resident capture replays, and the byte count
// matches the trace size.
func TestFanoutDeliversIdenticalStreams(t *testing.T) {
	app := kernels.Convolution()
	nd := smallND[app.Name]
	tr, err := Capture(app.Kernel, app.Make(nd), nd, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want collectSink
	tr.Replay(&want)
	// Fanout skips empty batches (no records to simulate); mirror that.
	wantNE := collectSink{}
	for i, g := range want.groups {
		if len(want.recs[i]) > 0 {
			wantNE.groups = append(wantNE.groups, g)
			wantNE.recs = append(wantNE.recs, want.recs[i])
		}
	}

	sinks := make([]ir.BatchTracer, 3)
	collected := make([]*collectSink, len(sinks))
	for i := range sinks {
		collected[i] = &collectSink{}
		sinks[i] = collected[i]
	}
	bytes, err := Fanout(app.Kernel, app.Make(nd), nd, 4, sinks)
	if err != nil {
		t.Fatal(err)
	}
	if bytes != tr.Bytes() {
		t.Errorf("fanout streamed %d bytes, trace holds %d", bytes, tr.Bytes())
	}
	for i, got := range collected {
		if !reflect.DeepEqual(got.groups, wantNE.groups) || !reflect.DeepEqual(got.recs, wantNE.recs) {
			t.Errorf("sink %d observed a different stream", i)
		}
	}

	if _, err := Fanout(app.Kernel, app.Make(nd), nd, 1, nil); err == nil {
		t.Error("Fanout with no sinks should error")
	}
}

// TestCaptureByteBudget: an over-budget capture reports the full stream
// size and PinnedAll degrades to streaming, while the budget counter
// tracks resident traces.
func TestCaptureByteBudget(t *testing.T) {
	app := kernels.Square()
	nd := smallND[app.Name]
	_, err := Capture(app.Kernel, app.Make(nd), nd, CaptureOptions{MaxBytes: 128})
	var tooLarge *TooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want *TooLargeError", err)
	}
	if tooLarge.Max != 128 || tooLarge.Bytes <= 128 {
		t.Fatalf("TooLargeError = %+v, want Max=128, Bytes>128", tooLarge)
	}
	full, err := Capture(app.Kernel, app.Make(nd), nd, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tooLarge.Bytes != full.Bytes() {
		t.Errorf("overflow reported %d bytes, full trace holds %d", tooLarge.Bytes, full.Bytes())
	}
}

// TestReplayCounters: the obs contract of satellite telemetry —
// replay.traces / replay.trace.bytes on capture, replay.replays and
// replay.cache.hits on (memoized) replays.
func TestReplayCounters(t *testing.T) {
	rec := obs.NewRecorder()
	recFn := func() *obs.Recorder { return rec }
	app := kernels.VectorAdd()
	nd := smallND[app.Name]
	args := app.Make(nd)
	tr, err := Capture(app.Kernel, args, nd, CaptureOptions{Rec: recFn})
	if err != nil {
		t.Fatal(err)
	}
	d := cpu.New(arch.XeonE5645())
	c := search.NewCache(0)
	if _, err := ReplayPinned(d, tr, c, recFn); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayPinned(d, tr, c, recFn); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"replay.traces":      1,
		"replay.trace.bytes": float64(tr.Bytes()),
		"replay.replays":     1,
		"replay.cache.hits":  1,
	}
	snap := rec.Registry().Snapshot()
	got := map[string]float64{}
	for _, m := range snap.Counters {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("counter %s = %g, want %g (all: %v)", name, got[name], v, got)
		}
	}
}

// TestCaptureRejectsNullLocal: a NULL local size would be resolved per
// device, making the "device-independent" stream device-dependent.
func TestCaptureRejectsNullLocal(t *testing.T) {
	app := kernels.Square()
	nd := ir.Range1D(4096, 0)
	if _, err := Capture(app.Kernel, app.Make(nd), nd, CaptureOptions{}); err == nil {
		t.Fatal("Capture accepted a NULL local size")
	}
}

// TestTraceKeyDistinguishesLaunches: the digest separates kernels,
// arguments and geometries, and ReplayKey separates devices.
func TestTraceKeyDistinguishesLaunches(t *testing.T) {
	sq, va := kernels.Square(), kernels.VectorAdd()
	nd1, nd2 := ir.Range1D(4096, 64), ir.Range1D(4096, 128)
	k1 := search.TraceKey(sq.Kernel, sq.Make(nd1), nd1)
	k2 := search.TraceKey(va.Kernel, va.Make(nd1), nd1)
	k3 := search.TraceKey(sq.Kernel, sq.Make(nd1), nd2)
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("trace keys collide: %s %s %s", k1, k2, k3)
	}
	if search.ReplayKey(k1, "devA") == search.ReplayKey(k1, "devB") {
		t.Fatal("replay keys for different devices collide")
	}
	if search.ReplayKey(k1, "devA") != search.ReplayKey(k1, "devA") {
		t.Fatal("replay key is not deterministic")
	}
}
