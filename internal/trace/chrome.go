package trace

import (
	"fmt"
	"strconv"

	"clperf/internal/obs"
)

// This file bridges the reconstructed workgroup schedule into the
// observability layer: a Perfetto/Chrome trace with one track per
// simulated worker, and worker-utilization metrics.

// AppendChrome exports the timeline under pid: one track per hardware
// thread, one "dispatch" slice then one "compute" slice per workgroup.
// Because the schedule is a greedy queue drain (a worker's next dispatch
// starts the instant its previous group ends), each track's slice
// durations sum to that worker's finish time, and the maximum over
// tracks is the makespan.
func (tl *Timeline) AppendChrome(t *obs.ChromeTrace, pid int) {
	t.Process(pid, "schedule:"+tl.Kernel)
	for w := 0; w < tl.Workers; w++ {
		t.Tid(pid, workerTrack(w)) // stable track order even for idle workers
	}
	for _, s := range tl.Segments {
		track := workerTrack(s.Worker)
		args := map[string]string{"group": strconv.Itoa(s.Group)}
		t.Slice(pid, track, "dispatch", "dispatch", s.Start-tl.Dispatch, s.Start, args)
		t.Slice(pid, track, fmt.Sprintf("%s g%d", tl.Kernel, s.Group), "compute", s.Start, s.End, args)
	}
}

// Chrome exports the timeline as a standalone trace.
func (tl *Timeline) Chrome(pid int) *obs.ChromeTrace {
	t := obs.NewChromeTrace()
	tl.AppendChrome(t, pid)
	return t
}

func workerTrack(w int) string { return fmt.Sprintf("worker-%02d", w) }

// PublishMetrics writes the schedule's summary into the registry:
// makespan, worker count, and per-worker plus mean utilization.
func (tl *Timeline) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Set("sched.makespan.ns", float64(tl.Makespan))
	reg.Set("sched.workers", float64(tl.Workers))
	util := tl.Utilization()
	var sum float64
	for i, u := range util {
		reg.Set(fmt.Sprintf("sched.util.w%02d", i), u)
		sum += u
	}
	if len(util) > 0 {
		reg.Set("sched.util.mean", sum/float64(len(util)))
	}
}
