package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeJSON is the subset of the Chrome trace-event format the tests
// inspect.
type chromeJSON struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		TS   float64           `json:"ts"`
		Dur  float64           `json:"dur"`
		PID  int               `json:"pid"`
		TID  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func exportJSON(t *testing.T, tl *Timeline) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := tl.Chrome(1).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func realTimeline(t *testing.T) *Timeline {
	t.Helper()
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(1<<14, 256)
	tl, err := CPU(d, app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestChromeExportGolden(t *testing.T) {
	// A tiny hand-built schedule keeps the golden file reviewable:
	// two workers, three groups, 10ns dispatch, 100ns compute.
	tl := &Timeline{
		Kernel:    "square",
		Workers:   2,
		GroupTime: 100,
		Dispatch:  10,
		Segments: []Segment{
			{Worker: 0, Group: 0, Start: 10, End: 110},
			{Worker: 1, Group: 1, Start: 10, End: 110},
			{Worker: 0, Group: 2, Start: 120, End: 220},
		},
		Makespan: 220,
	}
	got := exportJSON(t, tl)
	golden := filepath.Join("testdata", "timeline_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch; run go test ./internal/trace -run Golden -update\ngot:\n%s", got)
	}
}

func TestChromeExportProperties(t *testing.T) {
	tl := realTimeline(t)
	raw := exportJSON(t, tl)

	var parsed chromeJSON
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("emitted JSON does not unmarshal: %v", err)
	}

	type slice struct{ start, end float64 }
	perTrack := map[int][]slice{}
	makespanUS := tl.Makespan.Microseconds()
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.TS < 0 {
			t.Fatalf("negative timestamp: %+v", ev)
		}
		if end := ev.TS + ev.Dur; end > makespanUS*(1+1e-9)+1e-9 {
			t.Fatalf("event ends at %gus, beyond makespan %gus", end, makespanUS)
		}
		perTrack[ev.TID] = append(perTrack[ev.TID], slice{ev.TS, ev.TS + ev.Dur})
	}
	if len(perTrack) != tl.Workers {
		t.Fatalf("tracks = %d, want one per worker (%d)", len(perTrack), tl.Workers)
	}

	// Per track: events must not overlap, and because the schedule is a
	// gap-free greedy drain, slice durations sum to the track's end —
	// the busiest track's sum IS the makespan.
	var maxSum float64
	for tid, ss := range perTrack {
		sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
		var sum float64
		for i, s := range ss {
			if i > 0 && s.start < ss[i-1].end-1e-9 {
				t.Fatalf("track %d: slice %d overlaps previous (%g < %g)", tid, i, s.start, ss[i-1].end)
			}
			sum += s.end - s.start
		}
		if last := ss[len(ss)-1].end; math.Abs(sum-last) > 1e-6*last {
			t.Fatalf("track %d: durations sum %gus != track end %gus (idle gap in greedy schedule?)", tid, sum, last)
		}
		if sum > maxSum {
			maxSum = sum
		}
	}
	if math.Abs(maxSum-makespanUS) > 1e-6*makespanUS {
		t.Fatalf("busiest track sums to %gus, want makespan %gus", maxSum, makespanUS)
	}
}

func TestTimelinePublishMetrics(t *testing.T) {
	tl := realTimeline(t)
	rec := obs.NewRegistry()
	tl.PublishMetrics(rec)
	if got := rec.Gauge("sched.makespan.ns"); got != float64(tl.Makespan) {
		t.Fatalf("sched.makespan.ns = %g, want %g", got, float64(tl.Makespan))
	}
	if got := rec.Gauge("sched.workers"); got != float64(tl.Workers) {
		t.Fatalf("sched.workers = %g", got)
	}
	mean := rec.Gauge("sched.util.mean")
	if mean <= 0 || mean > 1 {
		t.Fatalf("sched.util.mean = %g", mean)
	}
}

func TestRenderOrdersByUtilizationDescending(t *testing.T) {
	// An imbalanced schedule: worker 1 is busiest, then 0, then 2 idle.
	tl := &Timeline{
		Kernel:  "k",
		Workers: 3,
		Segments: []Segment{
			{Worker: 0, Group: 0, Start: 0, End: 50},
			{Worker: 1, Group: 1, Start: 0, End: 100},
		},
		Makespan: 100,
	}
	var b strings.Builder
	tl.Render(&b, 20)
	var rows []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "T") {
			rows = append(rows, line[:3])
		}
	}
	want := []string{"T01", "T00", "T02"}
	if len(rows) != 3 || rows[0] != want[0] || rows[1] != want[1] || rows[2] != want[2] {
		t.Fatalf("render order = %v, want %v\n%s", rows, want, b.String())
	}
}
