// Package trace reconstructs and renders the CPU device model's workgroup
// schedule: which hardware thread runs which workgroup when. It makes the
// scheduling behaviour behind the paper's Figures 1-5 visible — tiny
// workgroups produce timelines dominated by dispatch gaps, large ones by
// solid compute segments.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/units"
)

// Segment is one workgroup's occupancy of one hardware thread.
type Segment struct {
	Worker int
	Group  int
	Start  units.Duration
	End    units.Duration
}

// Timeline is a launch's reconstructed schedule.
type Timeline struct {
	Kernel   string
	ND       ir.NDRange
	Workers  int
	Segments []Segment
	// Makespan is the last segment's end.
	Makespan units.Duration
	// GroupTime and Dispatch are the per-workgroup costs used.
	GroupTime units.Duration
	Dispatch  units.Duration
}

// CPU reconstructs the schedule of a launch on the CPU device: workgroups
// are drained from a shared queue by the workers, each paying the dispatch
// cost before its compute time — the same quantities the Estimate model
// integrates.
func CPU(d *cpu.Device, k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Timeline, error) {
	res, err := d.Estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	nd = res.ND
	groups := res.Groups
	workers := res.Workers
	issueShare := 1.0
	if workers > d.A.PhysicalCores() {
		issueShare = d.A.SMTYield
	}
	groupCycles := d.GroupCycles(res.Cost, nd.GroupItems(), issueShare)
	groupTime := d.A.Clock.Cycles(groupCycles)

	tl := &Timeline{
		Kernel:    k.Name,
		ND:        nd,
		Workers:   workers,
		GroupTime: groupTime,
		Dispatch:  d.A.GroupDispatch,
	}

	// Greedy queue drain: each worker takes the next group when free.
	free := make([]units.Duration, workers)
	for g := 0; g < groups; g++ {
		w := 0
		for i := 1; i < workers; i++ {
			if free[i] < free[w] {
				w = i
			}
		}
		start := free[w] + d.A.GroupDispatch
		end := start + groupTime
		tl.Segments = append(tl.Segments, Segment{Worker: w, Group: g, Start: start, End: end})
		free[w] = end
		if end > tl.Makespan {
			tl.Makespan = end
		}
	}
	return tl, nil
}

// Utilization returns each worker's busy fraction of the makespan.
func (tl *Timeline) Utilization() []float64 {
	busy := make([]units.Duration, tl.Workers)
	for _, s := range tl.Segments {
		busy[s.Worker] += s.End - s.Start
	}
	out := make([]float64, tl.Workers)
	for i, b := range busy {
		if tl.Makespan > 0 {
			out[i] = float64(b) / float64(tl.Makespan)
		}
	}
	return out
}

// Render writes an ASCII Gantt chart, one row per worker, `width` columns
// across the makespan. '#' marks compute, '.' dispatch/idle gaps.
func (tl *Timeline) Render(w io.Writer, width int) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(w, "kernel %s over %s: %d workgroups on %d workers, makespan %v\n",
		tl.Kernel, tl.ND, len(tl.Segments), tl.Workers, tl.Makespan)
	if tl.Makespan <= 0 {
		return
	}
	rows := make([][]byte, tl.Workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	col := func(t units.Duration) int {
		c := int(float64(t) / float64(tl.Makespan) * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, s := range tl.Segments {
		for c := col(s.Start); c <= col(s.End-1); c++ {
			rows[s.Worker][c] = '#'
		}
	}
	util := tl.Utilization()
	for _, i := range tl.workerOrder(util) {
		fmt.Fprintf(w, "T%02d |%s| %4.0f%%\n", i, rows[i], 100*util[i])
	}
}

// workerOrder returns worker indices sorted by utilization descending
// (ties by index ascending), so the busiest rows lead the chart.
func (tl *Timeline) workerOrder(util []float64) []int {
	order := make([]int, tl.Workers)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if util[order[a]] != util[order[b]] {
			return util[order[a]] > util[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}
