package trace

import (
	"strings"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

func TestTimelineCoversAllGroups(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(1<<14, 256)
	tl, err := CPU(d, app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Segments) != 64 {
		t.Fatalf("segments = %d, want 64 groups", len(tl.Segments))
	}
	seen := map[int]bool{}
	for _, s := range tl.Segments {
		if s.End <= s.Start {
			t.Fatalf("segment %d has non-positive duration", s.Group)
		}
		if s.Worker < 0 || s.Worker >= tl.Workers {
			t.Fatalf("segment %d on invalid worker %d", s.Group, s.Worker)
		}
		seen[s.Group] = true
	}
	if len(seen) != 64 {
		t.Fatalf("groups covered = %d", len(seen))
	}
}

func TestTimelineNoOverlapPerWorker(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(1<<16, 64)
	tl, err := CPU(d, app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int]float64)
	for _, s := range tl.Segments {
		if float64(s.Start) < last[s.Worker] {
			t.Fatalf("worker %d segments overlap", s.Worker)
		}
		last[s.Worker] = float64(s.End)
	}
}

func TestTimelineMakespanTracksEstimate(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(1<<16, 64)
	args := app.Make(nd)
	tl, err := CPU(d, app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Estimate(app.Kernel, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy drain and the analytic model agree within a group's cost.
	diff := float64(tl.Makespan) - float64(res.Compute)
	if diff < 0 {
		diff = -diff
	}
	slack := float64(tl.GroupTime+tl.Dispatch) * 2
	if diff > slack {
		t.Fatalf("makespan %v vs estimate %v differ by more than %v",
			tl.Makespan, res.Compute, slack)
	}
}

func TestTimelineRender(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(4096, 64)
	tl, err := CPU(d, app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tl.Render(&sb, 60)
	out := sb.String()
	if !strings.Contains(out, "T00 |") {
		t.Fatalf("render missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatal("render shows no compute segments")
	}
	if strings.Count(out, "\n") < tl.Workers {
		t.Fatal("render too short")
	}
}

func TestUtilizationBounds(t *testing.T) {
	d := cpu.New(arch.XeonE5645())
	app := kernels.Square()
	nd := ir.Range1D(1<<15, 32)
	tl, err := CPU(d, app.Kernel, app.Make(nd), nd)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range tl.Utilization() {
		if u < 0 || u > 1.0001 {
			t.Fatalf("worker %d utilization %v out of range", i, u)
		}
	}
}
