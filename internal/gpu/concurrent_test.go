package gpu

import (
	"sync"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// Mirror of the CPU device test: concurrent Estimate calls must each
// claim a disjoint span window on the guarded device clock.
func TestConcurrentEstimateClock(t *testing.T) {
	d := New(arch.GTX580())
	rec := obs.NewRecorder()
	d.Obs = rec

	const launches = 64
	nd := ir.Range1D(1<<12, 128)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total units.Duration
	for i := 0; i < launches; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := d.Estimate(squareKernel(), squareArgs(1<<12), nd)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			total += res.Time
			mu.Unlock()
		}()
	}
	wg.Wait()

	var spanSum units.Duration
	type window struct{ s, e units.Duration }
	var windows []window
	for _, s := range rec.Spans() {
		if s.Kind != obs.KindKernel {
			continue
		}
		spanSum += s.Duration()
		windows = append(windows, window{s.Start, s.End})
	}
	if len(windows) != launches {
		t.Fatalf("kernel spans = %d, want %d", len(windows), launches)
	}
	if spanSum != total || d.clock != total {
		t.Errorf("span sum %v / clock %v != launch time sum %v", spanSum, d.clock, total)
	}
	for i, a := range windows {
		for j, b := range windows {
			if i != j && a.s < b.e && b.s < a.e {
				t.Fatalf("kernel spans overlap: %+v and %+v", a, b)
			}
		}
	}
	if got := rec.Registry().Counter("gpu.launches"); got != launches {
		t.Errorf("gpu.launches = %v, want %d", got, launches)
	}
}
