package gpu

import (
	"testing"

	"clperf/internal/arch"
	"clperf/internal/ir"
)

func squareKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "square",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("in", ir.Gid(0))),
			ir.StoreF("out", ir.Gid(0), ir.Mul(ir.V("x"), ir.V("x"))),
		},
	}
}

func squareArgs(n int) *ir.Args {
	return ir.NewArgs().
		Bind("in", ir.NewBufferF32("in", n)).
		Bind("out", ir.NewBufferF32("out", n))
}

func TestOccupancyLimits(t *testing.T) {
	d := New(arch.GTX580())
	args := squareArgs(1 << 16)

	// 256-item groups: 8 warps each; 48/8 = 6 groups per SM.
	c, err := d.Analyze(squareKernel(), args, ir.Range1D(1<<16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if c.WarpsPerGroup != 8 {
		t.Fatalf("warps per group = %d, want 8", c.WarpsPerGroup)
	}
	if c.GroupsPerSM != 6 {
		t.Fatalf("groups per SM = %d, want 6", c.GroupsPerSM)
	}
	if c.ResidentWarps != 48 {
		t.Fatalf("resident warps = %d, want 48 (full occupancy)", c.ResidentWarps)
	}

	// 1-item groups: MaxGroupsPerSM caps occupancy at 8 warps.
	c1, err := d.Analyze(squareKernel(), args, ir.Range1D(1<<16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c1.ResidentWarps != 8 {
		t.Fatalf("resident warps with 1-item groups = %d, want 8", c1.ResidentWarps)
	}
	if c1.LaneEff >= 0.1 {
		t.Fatalf("lane efficiency with 1-item groups = %v, want 1/32", c1.LaneEff)
	}
}

func TestSharedMemLimitsOccupancy(t *testing.T) {
	d := New(arch.GTX580())
	k := &ir.Kernel{
		Name:    "bigshared",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Locals:  []ir.LocalArray{{Name: "t", Elem: ir.F32, Size: ir.I(8192)}}, // 32 KiB
		Body: []ir.Stmt{
			ir.LStoreF("t", ir.Lid(0), ir.LoadF("in", ir.Gid(0))),
			ir.Barrier{},
			ir.StoreF("out", ir.Gid(0), ir.LLoadF("t", ir.Lid(0))),
		},
	}
	c, err := d.Analyze(k, squareArgs(1<<14), ir.Range1D(1<<14, 64))
	if err != nil {
		t.Fatal(err)
	}
	// 48 KiB shared / 32 KiB per group -> 1 group per SM.
	if c.GroupsPerSM != 1 {
		t.Fatalf("groups per SM = %d, want 1 (shared memory bound)", c.GroupsPerSM)
	}
}

// Paper Figure 3/4: small workgroups crater GPU throughput.
func TestSmallWorkgroupsSlow(t *testing.T) {
	d := New(arch.GTX580())
	args := squareArgs(1 << 18)
	big, err := d.Estimate(squareKernel(), args, ir.Range1D(1<<18, 256))
	if err != nil {
		t.Fatal(err)
	}
	small, err := d.Estimate(squareKernel(), args, ir.Range1D(1<<18, 1))
	if err != nil {
		t.Fatal(err)
	}
	if float64(small.Time) < 4*float64(big.Time) {
		t.Fatalf("1-item groups (%v) should be far slower than 256 (%v)", small.Time, big.Time)
	}
}

// Paper Figure 1: losing TLP through coarsening hurts the GPU.
func TestFewWorkitemsSlowPerUnitWork(t *testing.T) {
	d := New(arch.GTX580())
	// base: 2^20 items of unit work; coarse: 2^10 items of 2^10 work each.
	base, err := d.Estimate(squareKernel(), squareArgs(1<<20), ir.Range1D(1<<20, 256))
	if err != nil {
		t.Fatal(err)
	}
	coarse := &ir.Kernel{
		Name:    "square1024",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Loop("c", ir.I(0), ir.I(1024),
				ir.Set("i", ir.Addi(ir.Gid(0), ir.Muli(ir.Vi("c"), ir.Gsz(0)))),
				ir.Set("x", ir.LoadF("in", ir.Vi("i"))),
				ir.StoreF("out", ir.Vi("i"), ir.Mul(ir.V("x"), ir.V("x"))),
			),
		},
	}
	cres, err := d.Estimate(coarse, squareArgs(1<<20), ir.Range1D(1<<10, 256))
	if err != nil {
		t.Fatal(err)
	}
	if cres.Time <= base.Time {
		t.Fatalf("coarsened run (%v) should be slower than base (%v) on the GPU", cres.Time, base.Time)
	}
}

// Paper Figure 6: ILP does not change GPU throughput when occupancy is
// high.
func TestILPFlatOnGPU(t *testing.T) {
	d := New(arch.GTX580())
	mk := func(chains int) (*ir.Kernel, float64) {
		body := []ir.Stmt{}
		stmts := []ir.Stmt{ir.Set("m", ir.LoadF("in", ir.Gid(0)))}
		names := []string{}
		for c := 0; c < chains; c++ {
			n := "acc" + string(rune('a'+c))
			names = append(names, n)
			stmts = append(stmts, ir.Set(n, ir.F(1)))
			body = append(body, ir.Set(n, ir.Mul(ir.Mul(ir.V(n), ir.V("m")), ir.V("m"))))
		}
		stmts = append(stmts, ir.For{Var: "t", Start: ir.I(0), End: ir.I(256), Step: ir.I(1), Body: body})
		sum := ir.Expr(ir.V(names[0]))
		for _, n := range names[1:] {
			sum = ir.Add(sum, ir.V(n))
		}
		stmts = append(stmts, ir.StoreF("out", ir.Gid(0), sum))
		k := &ir.Kernel{Name: "ilp", WorkDim: 1,
			Params: []ir.Param{ir.Buf("in"), ir.Buf("out")}, Body: stmts}
		return k, float64(2 * chains * 256)
	}
	args := squareArgs(1 << 18)
	nd := ir.Range1D(1<<18, 256)
	perFlop := func(chains int) float64 {
		k, flops := mk(chains)
		res, err := d.Estimate(k, args, nd)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Time) / (flops * float64(nd.GlobalItems()))
	}
	f1, f4 := perFlop(1), perFlop(4)
	ratio := f1 / f4
	if ratio < 0.85 || ratio > 1.2 {
		t.Fatalf("GPU per-flop time should be ILP-independent: ILP1/ILP4 = %v", ratio)
	}
}

// Little's-law memory model: a single resident warp cannot stream at peak.
func TestLowTLPChokesBandwidth(t *testing.T) {
	d := New(arch.GTX580())
	args := squareArgs(64)
	res, err := d.Estimate(squareKernel(), args, ir.Range1D(64, 64))
	if err != nil {
		t.Fatal(err)
	}
	// 2 warps on one SM: far below the ~5GB/s needed for peak.
	full, err := d.Estimate(squareKernel(), squareArgs(1<<20), ir.Range1D(1<<20, 256))
	if err != nil {
		t.Fatal(err)
	}
	perItemSmall := float64(res.MemFloor) / 64
	perItemFull := float64(full.MemFloor) / float64(1<<20)
	if perItemSmall <= perItemFull {
		t.Fatalf("per-item memory time with 2 warps (%v) should exceed full TLP (%v)",
			perItemSmall, perItemFull)
	}
}

func TestGPULaunchFunctional(t *testing.T) {
	d := New(arch.GTX580())
	const n = 1024
	args := squareArgs(n)
	for i := 0; i < n; i++ {
		args.Buffers["in"].Set(i, float64(i))
	}
	res, err := d.Launch(squareKernel(), args, ir.Range1D(n, 0), LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Occupancy <= 0 || res.Occupancy > 1 {
		t.Fatalf("occupancy = %v", res.Occupancy)
	}
	for i := 0; i < n; i++ {
		if got, want := args.Buffers["out"].Get(i), float64(i*i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestResolveLocalGPU(t *testing.T) {
	d := New(arch.GTX580())
	nd := d.ResolveLocal(ir.Range1D(1<<20, 0))
	if nd.Local[0] != 64 {
		t.Fatalf("NULL local resolved to %d, want 64", nd.Local[0])
	}
}

// Uncoalesced accesses must cost replay issue slots.
func TestUncoalescedReplays(t *testing.T) {
	d := New(arch.GTX580())
	strided := &ir.Kernel{
		Name:    "strided",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", ir.Gid(0),
				ir.LoadF("in", ir.Muli(ir.Gid(0), ir.I(32)))),
		},
	}
	n := 1 << 10
	args := ir.NewArgs().
		Bind("in", ir.NewBufferF32("in", 32*n)).
		Bind("out", ir.NewBufferF32("out", n))
	cs, err := d.Analyze(strided, args, ir.Range1D(n, 256))
	if err != nil {
		t.Fatal(err)
	}
	cu, err := d.Analyze(squareKernel(), squareArgs(n), ir.Range1D(n, 256))
	if err != nil {
		t.Fatal(err)
	}
	if cs.IssuePerWarp <= cu.IssuePerWarp*4 {
		t.Fatalf("strided load should replay: %v vs unit %v", cs.IssuePerWarp, cu.IssuePerWarp)
	}
	if cs.TrafficPerItem <= cu.TrafficPerItem {
		t.Fatal("strided load should waste line bandwidth")
	}
}

// GPU branch costing charges both arms (SumBranch), unlike the CPU.
func TestGPUDivergenceCostsBothArms(t *testing.T) {
	d := New(arch.GTX580())
	branchy := &ir.Kernel{
		Name:    "branchy",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("in", ir.Gid(0))),
			ir.If{
				Cond: ir.Bin{Op: ir.GtF, X: ir.V("x"), Y: ir.F(0)},
				Then: []ir.Stmt{ir.Set("y", ir.Mul(ir.Mul(ir.V("x"), ir.V("x")), ir.V("x")))},
				Else: []ir.Stmt{ir.Set("y", ir.Mul(ir.Mul(ir.F(2), ir.V("x")), ir.V("x")))},
			},
			ir.StoreF("out", ir.Gid(0), ir.V("y")),
		},
	}
	flat := &ir.Kernel{
		Name:    "flat",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("x", ir.LoadF("in", ir.Gid(0))),
			ir.Set("y", ir.Mul(ir.Mul(ir.V("x"), ir.V("x")), ir.V("x"))),
			ir.StoreF("out", ir.Gid(0), ir.V("y")),
		},
	}
	args := squareArgs(1 << 12)
	nd := ir.Range1D(1<<12, 256)
	cb, err := d.Analyze(branchy, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := d.Analyze(flat, args, nd)
	if err != nil {
		t.Fatal(err)
	}
	if cb.IssuePerWarp <= cf.IssuePerWarp {
		t.Fatalf("diverged warp must pay for both arms: %v vs %v",
			cb.IssuePerWarp, cf.IssuePerWarp)
	}
}
