// Package gpu implements the GPU device model: an SM/warp occupancy timing
// model in the style of the NVIDIA OpenCL platform on the paper's GTX 580.
//
// The model captures exactly the contrasts the paper draws against the CPU:
// warps hide latency through TLP (so kernel ILP has no effect, Figure 6);
// occupancy collapses with tiny workgroups (Figures 3-4) or after workitem
// coarsening (Figure 1); and host<->device traffic crosses PCIe.
package gpu

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// Device is the GPU compute device.
type Device struct {
	A *arch.GPU
	// DefaultLocal is the workgroup size used when the host passes NULL.
	DefaultLocal int
	// Obs, when set, records every priced launch as a span tree plus
	// per-kernel metrics; nil (the default) costs nothing. Spans are laid
	// end to end on the device's own clock, guarded by clockMu so
	// concurrent Estimate calls are safe (each launch claims a disjoint
	// span window, in arrival order).
	Obs *obs.Recorder
	// clockMu guards clock against concurrent launches.
	clockMu sync.Mutex
	// clock is the device-local span clock.
	clock units.Duration
}

// New returns a GPU device.
func New(a *arch.GPU) *Device {
	return &Device{A: a, DefaultLocal: 64}
}

// Name returns the device name.
func (d *Device) Name() string { return d.A.Name }

// Fingerprint canonically encodes every device-side input of Estimate
// outside (kernel, args, NDRange): the arch parameter set plus the
// NULL-workgroup policy. It is the device part of a search cache key.
func (d *Device) Fingerprint() string {
	return fmt.Sprintf("gpu|%+v|dl=%d", *d.A, d.DefaultLocal)
}

// ResolveLocal applies the NULL-workgroup policy (largest divisor of the
// global size not exceeding DefaultLocal).
func (d *Device) ResolveLocal(nd ir.NDRange) ir.NDRange {
	if !nd.LocalNull() {
		return nd
	}
	var local [3]int
	g := nd.Global[0]
	if g < 1 {
		g = 1
	}
	local[0] = largestDivisorLE(g, d.DefaultLocal)
	local[1], local[2] = 1, 1
	return nd.WithLocal(local)
}

func largestDivisorLE(n, limit int) int {
	if limit >= n {
		return n
	}
	for v := limit; v >= 1; v-- {
		if n%v == 0 {
			return v
		}
	}
	return 1
}

// Cost is the static cost of one workgroup's warps on an SM.
type Cost struct {
	Profile *ir.Profile

	// WarpsPerGroup is the number of warps one workgroup occupies.
	WarpsPerGroup int
	// LaneEff is the fraction of warp lanes holding real workitems: a
	// workgroup of 1 wastes 31/32 of every issue slot.
	LaneEff float64
	// IssuePerWarp is the SM issue slots one warp consumes for the whole
	// kernel, including non-coalesced memory replays.
	IssuePerWarp float64
	// SerialCycles is a warp's dependence critical path: the latency other
	// warps must cover.
	SerialCycles float64
	// GroupsPerSM is the occupancy limit for this kernel.
	GroupsPerSM int
	// ResidentWarps is GroupsPerSM * WarpsPerGroup.
	ResidentWarps int
	// TrafficPerItem is device-memory traffic per workitem, in bytes.
	TrafficPerItem float64
	// LocalBytes is scratchpad usage per workgroup.
	LocalBytes int64
}

// uncoalescedReplay is the issue-slot multiplier for a warp memory access
// whose lanes hit scattered lines (transaction replays on Fermi).
const uncoalescedReplay = 16

// Analyze statically prices kernel k at the launch configuration.
func (d *Device) Analyze(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Cost, error) {
	a := d.A
	prof, err := ir.ProfileKernel(k, args, nd, a.Lat, ir.SumBranch)
	if err != nil {
		return nil, err
	}
	items := nd.GroupItems()
	warps := (items + a.WarpSize - 1) / a.WarpSize
	c := &Cost{
		Profile:       prof,
		WarpsPerGroup: warps,
		LaneEff:       float64(items) / float64(warps*a.WarpSize),
	}

	cnt := prof.Counts
	// One IR op is one warp instruction; uncoalesced accesses replay.
	var memIssue float64
	perBuf := map[string]float64{}
	for _, s := range prof.Accesses {
		if s.Stride.Unit() || s.Stride.Uniform() {
			memIssue += s.PerItem
		} else {
			memIssue += s.PerItem * uncoalescedReplay
		}
		t := gpuTraffic(s.Stride)
		if s.LoopVariant {
			c.TrafficPerItem += s.PerItem * t
		} else if t > perBuf[s.Buf] {
			perBuf[s.Buf] = t
		}
	}
	for _, t := range perBuf {
		c.TrafficPerItem += t
	}
	// The GPU compiler unrolls counted loops, so induction updates and
	// compares (one each per trip) vanish from the instruction stream.
	intOps := cnt[ir.OpInt] - prof.LoopTrips
	cmpOps := cnt[ir.OpCmp] - prof.LoopTrips
	if intOps < 0 {
		intOps = 0
	}
	if cmpOps < 0 {
		cmpOps = 0
	}
	alu := cnt[ir.OpFAdd] + cnt[ir.OpFMul] + cnt[ir.OpFMA] + intOps +
		cmpOps + cnt[ir.OpSelect]
	slow := (cnt[ir.OpFDiv] + cnt[ir.OpSpecial] + cnt[ir.OpLibm]) * 4 // quarter-rate SFU ops
	local := cnt[ir.OpLocalLoad] + cnt[ir.OpLocalStore]
	atomics := cnt[ir.OpAtomic] * 8 // serialized bank updates
	barriers := cnt[ir.OpBarrier] * 2
	c.IssuePerWarp = alu + slow + local + memIssue + atomics + barriers
	c.SerialCycles = prof.SerialCycles

	for _, l := range k.Locals {
		se := ir.NewStaticEnv(nd, args)
		if n, ok := ir.EvalStatic(l.Size, se); ok {
			c.LocalBytes += int64(n) * l.Elem.Size()
		}
	}

	// Occupancy limits.
	g := a.MaxGroupsPerSM
	if warps > 0 && a.MaxWarpsPerSM/warps < g {
		g = a.MaxWarpsPerSM / warps
	}
	if c.LocalBytes > 0 {
		byShared := int(int64(a.SharedMemPerSM) / c.LocalBytes)
		if byShared < g {
			g = byShared
		}
	}
	if g < 1 {
		g = 1
	}
	c.GroupsPerSM = g
	c.ResidentWarps = g * warps
	if c.ResidentWarps > a.MaxWarpsPerSM {
		c.ResidentWarps = a.MaxWarpsPerSM
	}
	return c, nil
}

func gpuTraffic(s ir.Stride) float64 {
	const line = 64
	switch {
	case s.Uniform():
		return 0
	case s.Unit():
		return 4
	case !s.Known:
		return line
	default:
		return math.Min(math.Abs(float64(s.Elems))*4, line)
	}
}

// Result reports the simulated outcome of one kernel launch.
type Result struct {
	Kernel string
	ND     ir.NDRange
	Cost   *Cost

	Time     units.Duration
	Compute  units.Duration
	MemFloor units.Duration
	// Occupancy is resident warps relative to the SM maximum.
	Occupancy float64
}

// Throughput returns application flops per second for this launch.
func (r *Result) Throughput() units.Throughput {
	flops := r.Cost.Profile.Counts.Flops() * float64(r.ND.GlobalItems())
	return units.ThroughputOf(flops, r.Time)
}

// Estimate prices a launch without executing it.
func (d *Device) Estimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Result, error) {
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}
	a := d.A

	groups := nd.NumGroups()
	totalWarps := float64(groups * cost.WarpsPerGroup)
	warpsPerSM := math.Ceil(totalWarps / float64(a.SMs))

	// Warps execute in resident batches; a batch is issue-bound when its
	// warps cover each other's latency and latency-bound otherwise.
	r := float64(cost.ResidentWarps)
	if r > warpsPerSM {
		r = warpsPerSM
	}
	if r < 1 {
		r = 1
	}
	batches := warpsPerSM / r
	if batches < 1 {
		batches = 1
	}
	cyclesPerBatch := math.Max(r*cost.IssuePerWarp, cost.SerialCycles)
	smCycles := batches * cyclesPerBatch
	compute := a.Clock.Cycles(smCycles)

	// Achievable bandwidth follows Little's law: outstanding lines are
	// bounded by resident warps, so a launch with little TLP (the paper's
	// coarsened or tiny-workgroup configurations) cannot stream memory at
	// the device's peak rate.
	activeSMs := float64(a.SMs)
	if g := float64(groups); g < activeSMs {
		activeSMs = g
	}
	residentTotal := math.Min(totalWarps, activeSMs*r)
	if residentTotal < 1 {
		residentTotal = 1
	}
	latSec := a.Clock.Cycles(a.MemLatency).Seconds()
	bw := units.Bandwidth(residentTotal * a.MLPPerWarp * float64(a.LineSize) / latSec)
	if bw > a.MemBandwidth {
		bw = a.MemBandwidth
	}
	traffic := cost.TrafficPerItem * float64(nd.GlobalItems())
	memFloor := bw.Transfer(units.ByteSize(traffic))

	time := compute
	if memFloor > time {
		time = memFloor
	}
	time += a.KernelLaunch

	res := &Result{
		Kernel:    k.Name,
		ND:        nd,
		Cost:      cost,
		Time:      time,
		Compute:   compute,
		MemFloor:  memFloor,
		Occupancy: float64(cost.ResidentWarps) / float64(a.MaxWarpsPerSM),
	}
	d.observe(res)
	return res, nil
}

// observe records the priced launch into the device's recorder as a
// kernel span with phase children and per-kernel metrics.
func (d *Device) observe(r *Result) {
	if d.Obs == nil {
		return
	}
	rec := d.Obs
	d.clockMu.Lock()
	s := d.clock
	d.clock += r.Time
	d.clockMu.Unlock()
	id := rec.Record(obs.NoParent, obs.KindKernel, "gpu.launch:"+r.Kernel, s, s+r.Time)
	rec.SetTrack(id, "gpu")
	rec.Annotate(id, "occupancy", strconv.FormatFloat(r.Occupancy, 'g', 4, 64))
	rec.Record(id, obs.KindPhase, "compute", s, s+r.Compute)
	rec.Record(id, obs.KindPhase, "mem_floor", s, s+r.MemFloor)
	reg := rec.Registry()
	reg.Observe("gpu.kernel.ns:"+r.Kernel, float64(r.Time))
	reg.Add("gpu.launches", 1)
	reg.Set("gpu.occupancy:"+r.Kernel, r.Occupancy)
}

// LaunchOptions controls Launch.
type LaunchOptions struct {
	SkipFunctional bool
	Parallel       int
}

// Launch functionally executes the kernel and returns the simulated timing.
func (d *Device) Launch(k *ir.Kernel, args *ir.Args, nd ir.NDRange, opts LaunchOptions) (*Result, error) {
	nd = d.ResolveLocal(nd)
	res, err := d.Estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	if !opts.SkipFunctional {
		par := opts.Parallel
		if par == 0 {
			par = runtime.GOMAXPROCS(0)
		}
		if err := ir.ExecRange(k, args, res.ND, ir.ExecOptions{Parallel: par}); err != nil {
			return nil, fmt.Errorf("gpu: functional execution of %s: %w", k.Name, err)
		}
	}
	return res, nil
}
