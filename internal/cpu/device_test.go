package cpu

import (
	"testing"
	"testing/quick"

	"clperf/internal/arch"
	"clperf/internal/ir"
)

func squareKernel() *ir.Kernel {
	return &ir.Kernel{
		Name:    "square",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Set("i", ir.Gid(0)),
			ir.Set("x", ir.LoadF("in", ir.Vi("i"))),
			ir.StoreF("out", ir.Vi("i"), ir.Mul(ir.V("x"), ir.V("x"))),
		},
	}
}

func squareArgs(n int) *ir.Args {
	return ir.NewArgs().
		Bind("in", ir.NewBufferF32("in", n)).
		Bind("out", ir.NewBufferF32("out", n))
}

func TestResolveLocalPolicy(t *testing.T) {
	d := New(arch.XeonE5645())
	cases := []struct {
		global, want int
	}{
		{10000, 50},   // largest divisor of 10^4 below 64
		{1 << 20, 64}, // power of two hits the cap exactly
		{24, 1},       // small ranges spread across all 24 threads
		{7, 1},        // primes fall back to 1
	}
	for _, c := range cases {
		nd := d.ResolveLocal(ir.Range1D(c.global, 0))
		if nd.Local[0] != c.want {
			t.Errorf("ResolveLocal(%d) chose %d, want %d", c.global, nd.Local[0], c.want)
		}
		if err := nd.Validate(); err != nil {
			t.Errorf("ResolveLocal(%d): %v", c.global, err)
		}
	}
	// Explicit sizes pass through.
	nd := d.ResolveLocal(ir.Range1D(1024, 128))
	if nd.Local[0] != 128 {
		t.Errorf("explicit local overridden: %v", nd)
	}
}

func TestEstimateBasics(t *testing.T) {
	d := New(arch.XeonE5645())
	res, err := d.Estimate(squareKernel(), squareArgs(1<<16), ir.Range1D(1<<16, 256))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("time must be positive")
	}
	if res.Groups != 256 {
		t.Fatalf("groups = %d, want 256", res.Groups)
	}
	if res.Cost.Width != d.A.SIMDWidth {
		t.Fatalf("square must vectorize at width %d, got %d", d.A.SIMDWidth, res.Cost.Width)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput must be positive")
	}
}

// Paper guideline 1: larger workgroups are faster on the CPU until
// saturation.
func TestLargerWorkgroupsFaster(t *testing.T) {
	d := New(arch.XeonE5645())
	k := squareKernel()
	args := squareArgs(1 << 16)
	var prev float64
	for i, local := range []int{1, 16, 256} {
		res, err := d.Estimate(k, args, ir.Range1D(1<<16, local))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && float64(res.Time) > prev {
			t.Fatalf("local %d slower than smaller group: %v > %v", local, res.Time, prev)
		}
		prev = float64(res.Time)
	}
}

// Paper guideline on coarsening: fewer, fatter workitems win for tiny
// kernels.
func TestCoarseKernelFaster(t *testing.T) {
	d := New(arch.XeonE5645())
	fine, err := d.Estimate(squareKernel(), squareArgs(1<<20), ir.Range1D(1<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Hand-coarsened x16 with strided accesses.
	coarse := &ir.Kernel{
		Name:    "square16",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.Loop("c", ir.I(0), ir.I(16),
				ir.Set("i", ir.Addi(ir.Gid(0), ir.Muli(ir.Vi("c"), ir.Gsz(0)))),
				ir.Set("x", ir.LoadF("in", ir.Vi("i"))),
				ir.StoreF("out", ir.Vi("i"), ir.Mul(ir.V("x"), ir.V("x"))),
			),
		},
	}
	cres, err := d.Estimate(coarse, squareArgs(1<<20), ir.Range1D(1<<16, 0))
	if err != nil {
		t.Fatal(err)
	}
	if cres.Time >= fine.Time {
		t.Fatalf("coarse %v not faster than fine %v", cres.Time, fine.Time)
	}
}

// The ILP experiment's core property: more independent chains, more
// throughput, saturating at the port limit.
func TestILPScaling(t *testing.T) {
	d := New(arch.XeonE5645())
	mk := func(chains int) *ir.Kernel {
		body := []ir.Stmt{}
		names := []string{}
		stmts := []ir.Stmt{ir.Set("m", ir.LoadF("in", ir.Gid(0)))}
		for c := 0; c < chains; c++ {
			n := "acc" + string(rune('a'+c))
			names = append(names, n)
			stmts = append(stmts, ir.Set(n, ir.F(1)))
			body = append(body, ir.Set(n, ir.Mul(ir.Mul(ir.V(n), ir.V("m")), ir.V("m"))))
		}
		stmts = append(stmts, ir.For{Var: "t", Start: ir.I(0), End: ir.I(128), Step: ir.I(1), Body: body})
		sum := ir.Expr(ir.V(names[0]))
		for _, n := range names[1:] {
			sum = ir.Add(sum, ir.V(n))
		}
		stmts = append(stmts, ir.StoreF("out", ir.Gid(0), sum))
		return &ir.Kernel{Name: "ilp", WorkDim: 1,
			Params: []ir.Param{ir.Buf("in"), ir.Buf("out")}, Body: stmts}
	}
	args := squareArgs(1 << 14)
	nd := ir.Range1D(1<<14, 256)
	time := func(chains int) float64 {
		res, err := d.Estimate(mk(chains), args, nd)
		if err != nil {
			t.Fatal(err)
		}
		// Normalize per flop: chains scale the flop count.
		return float64(res.Time) / float64(chains)
	}
	t1, t4 := time(1), time(4)
	if t4 >= t1*0.5 {
		t.Fatalf("per-flop time at ILP 4 (%v) should be well under ILP 1 (%v)", t4, t1)
	}
	t5, t8 := time(5), time(8)
	if t8 < t5*0.8 {
		t.Fatalf("ILP must saturate: per-flop time %v at 8 vs %v at 5", t8, t5)
	}
}

// Atomics and libm calls force scalar execution.
func TestScalarFallbacks(t *testing.T) {
	d := New(arch.XeonE5645())
	nd := ir.Range1D(1024, 128)

	libm := &ir.Kernel{
		Name:    "expk",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Body: []ir.Stmt{
			ir.StoreF("out", ir.Gid(0), ir.Call1(ir.Exp, ir.LoadF("in", ir.Gid(0)))),
		},
	}
	cost, err := d.Analyze(libm, squareArgs(1024), nd)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Width != 1 {
		t.Fatalf("libm kernel width = %d, want 1 (scalar)", cost.Width)
	}
	if cost.Vec.Vectorized {
		t.Fatal("libm kernel must not vectorize")
	}

	// Narrow workgroups clamp the packet width.
	cost2, err := d.Analyze(squareKernel(), squareArgs(1024), ir.Range1D(1024, 2))
	if err != nil {
		t.Fatal(err)
	}
	if cost2.Width != 2 {
		t.Fatalf("width with local 2 = %d, want 2", cost2.Width)
	}
}

// Barrier state spill: a big workgroup with barriers pays more per item
// than a moderate one.
func TestBarrierSpill(t *testing.T) {
	d := New(arch.XeonE5645())
	k := &ir.Kernel{
		Name:    "bar",
		WorkDim: 1,
		Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
		Locals:  []ir.LocalArray{{Name: "t", Elem: ir.F32, Size: ir.Lsz(0)}},
		Body: []ir.Stmt{
			ir.LStoreF("t", ir.Lid(0), ir.LoadF("in", ir.Gid(0))),
			ir.Barrier{},
			ir.StoreF("out", ir.Gid(0), ir.LLoadF("t", ir.Lid(0))),
		},
	}
	perItem := func(local int) float64 {
		cost, err := d.Analyze(k, squareArgs(1<<14), ir.Range1D(1<<14, local))
		if err != nil {
			t.Fatal(err)
		}
		return d.GroupCycles(cost, local, 1) / float64(local)
	}
	small, big := perItem(64), perItem(1024)
	if big <= small {
		t.Fatalf("per-item cycles with 1024-item barrier group (%v) should exceed 64-item group (%v)",
			big, small)
	}
}

// Property: estimated time is monotone in the number of workitems.
func TestTimeMonotoneInItems(t *testing.T) {
	d := New(arch.XeonE5645())
	k := squareKernel()
	prop := func(a, b uint16) bool {
		lo := (int(a)%1024 + 1) * 64
		hi := lo + (int(b)%1024+1)*64
		args := squareArgs(hi)
		r1, err1 := d.Estimate(k, args, ir.Range1D(lo, 64))
		r2, err2 := d.Estimate(k, args, ir.Range1D(hi, 64))
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.Time <= r2.Time
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLaunchFunctional(t *testing.T) {
	d := New(arch.XeonE5645())
	const n = 2048
	args := squareArgs(n)
	for i := 0; i < n; i++ {
		args.Buffers["in"].Set(i, float64(i)*0.5)
	}
	res, err := d.Launch(squareKernel(), args, ir.Range1D(n, 0), LaunchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no simulated time")
	}
	for i := 0; i < n; i++ {
		x := float32(args.Buffers["in"].Get(i))
		if got, want := args.Buffers["out"].Get(i), float64(x*x); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}
