// Package cpu implements the out-of-order multicore CPU device model: the
// way the Intel OpenCL CPU platform of the paper compiles and schedules
// kernels, priced against the architectural parameters in internal/arch.
//
// A kernel launch is costed in three stages:
//
//  1. Static analysis (Analyze): the IR profiler yields per-workitem op
//     counts and the dependence critical path; the OpenCL vectorization
//     model decides whether workitems are packed into SIMD lanes. The
//     result is a per-packet cycle cost with separate throughput-bound and
//     dependence-bound components — the distinction that produces the
//     paper's ILP results (Figure 6).
//
//  2. Workgroup cost: packets per group times packet cycles, plus barrier
//     crossings (with a state-spill penalty once the group's live state
//     outgrows a cache level — the mechanism behind the CPU's smaller
//     optimal Matrixmul workgroup, Figure 3).
//
//  3. Scheduling (Schedule): workgroups are tasks dispatched to hardware
//     threads; per-group dispatch overhead and SMT contention determine
//     total time, producing the scheduling-overhead results (Figures 1-5).
package cpu

import (
	"math"

	"clperf/internal/ir"
)

// Cost is the static per-packet execution cost of a kernel on the CPU. A
// "packet" is the unit the runtime's workitem loop advances by: SIMDWidth
// workitems when the kernel vectorizes, one otherwise.
type Cost struct {
	Profile *ir.Profile
	Vec     *ir.CLVecReport
	// Width is the packet width in workitems.
	Width int

	// IssueCycles is the throughput-bound portion of one packet: vector
	// instructions through the FP, memory and total issue ports.
	IssueCycles float64
	// SerialCycles is the dependence-bound portion: the critical path after
	// out-of-order overlap with neighbouring packets.
	SerialCycles float64
	// Overhead is the runtime's per-packet bookkeeping.
	Overhead float64

	// TrafficPerItem is the DRAM/L3 traffic one workitem generates, in
	// bytes, considering stride-dependent line utilization.
	TrafficPerItem float64
	// LocalBytes is the kernel's __local footprint per workgroup.
	LocalBytes int64
}

// PacketCycles returns the cycles one packet occupies a hardware thread,
// given that thread's issue share (1 when the SMT sibling is idle,
// SMTYield when both siblings are busy).
func (c *Cost) PacketCycles(issueShare float64) float64 {
	if issueShare <= 0 {
		issueShare = 1
	}
	return math.Max(c.SerialCycles, (c.IssueCycles+c.Overhead)/issueShare)
}

// ItemCycles returns per-workitem cycles at full issue share.
func (c *Cost) ItemCycles() float64 {
	return c.PacketCycles(1) / float64(c.Width)
}

// Analyze statically prices one packet of kernel k at the launch
// configuration, letting the OpenCL implicit vectorization model pick the
// packet width. The local size must be resolved.
func (d *Device) Analyze(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Cost, error) {
	vec, err := ir.VectorizeOpenCL(k, args, nd)
	if err != nil {
		return nil, err
	}
	width := 1
	if vec.Vectorized && !d.ForceScalar {
		// The implicit vectorizer packs workitems along workgroup dimension
		// 0, so a workgroup narrower than the SIMD width cannot fill the
		// lanes — one reason tiny workgroups hurt on CPUs (Figures 3 and 5).
		width = d.A.SIMDWidth
		if l0 := nd.Local[0]; l0 > 0 && l0 < width {
			width = l0
		}
	}
	c, err := d.AnalyzeWidth(k, args, nd, width)
	if err != nil {
		return nil, err
	}
	c.Vec = vec
	return c, nil
}

// AnalyzeWidth prices one packet at an externally chosen vector width (the
// OpenMP layer passes its own loop-vectorizer verdict).
func (d *Device) AnalyzeWidth(k *ir.Kernel, args *ir.Args, nd ir.NDRange, width int) (*Cost, error) {
	a := d.A
	prof, err := ir.ProfileKernel(k, args, nd, a.Lat, ir.MaxBranch)
	if err != nil {
		return nil, err
	}
	if width < 1 {
		width = 1
	}

	c := &Cost{Profile: prof, Width: width}
	cnt := prof.Counts

	// Memory ops per packet: packed sites issue one vector access, the rest
	// gather/scatter one lane at a time. Traffic counts loop-variant sites
	// once per execution, but loop-invariant sites touch one location per
	// workitem no matter how often they run, and repeated sites on the same
	// buffer share lines — so invariant traffic is per buffer.
	var packedOps, gatherOps float64
	perBuf := map[string]float64{}
	for _, s := range prof.Accesses {
		if s.Stride.Unit() || s.Stride.Uniform() {
			packedOps += s.PerItem
		} else {
			gatherOps += s.PerItem
		}
		t := trafficPerAccess(s.Stride)
		if s.LoopVariant {
			c.TrafficPerItem += s.PerItem * t
		} else if t > perBuf[s.Buf] {
			perBuf[s.Buf] = t
		}
	}
	for _, t := range perBuf {
		c.TrafficPerItem += t
	}
	memOps := packedOps + gatherOps*float64(width)
	localOps := cnt[ir.OpLocalLoad] + cnt[ir.OpLocalStore]

	// FP issue slots per packet, split across the multiply and add ports
	// (the Westmere arrangement; peak flops needs both busy). Divides and
	// special functions occupy the multiply port for several cycles, and an
	// FMA on non-FMA hardware is a multiply plus an add.
	mulOps := cnt[ir.OpFMul] + cnt[ir.OpFMA] +
		cnt[ir.OpFDiv]*divOccupancy + cnt[ir.OpSpecial]*specialOccupancy
	addOps := cnt[ir.OpFAdd] + cnt[ir.OpFMA]
	intOps := cnt[ir.OpInt] + cnt[ir.OpCmp] + cnt[ir.OpSelect]
	totalOps := mulOps + addOps + intOps + memOps + localOps

	issue := math.Max(mulOps, addOps)
	issue = math.Max(issue, (memOps+localOps)/a.MemPipes)
	issue = math.Max(issue, totalOps/a.IssueWidth)
	// Math-library calls serialize through the scalar libm (one call per
	// lane: the reason they also block vectorization).
	issue += cnt[ir.OpLibm] * libmOccupancy * float64(width)
	// Atomics serialize: they occupy the pipeline for their full latency.
	issue += cnt[ir.OpAtomic] * a.Lat[ir.OpAtomic] * float64(width)
	c.IssueCycles = issue

	// Out-of-order overlap: neighbouring packets are independent, so the
	// window hides a chain that is short relative to the packet's op count.
	overlap := 1.0
	if totalOps > 0 {
		overlap = a.OoOWindow / totalOps
	}
	overlap = math.Min(math.Max(overlap, 1), maxOoOOverlap)
	c.SerialCycles = prof.SerialCycles / overlap

	c.Overhead = a.ItemOverhead

	for _, l := range k.Locals {
		se := ir.NewStaticEnv(nd, args)
		if n, ok := ir.EvalStatic(l.Size, se); ok {
			c.LocalBytes += int64(n) * l.Elem.Size()
		}
	}
	return c, nil
}

const (
	// divOccupancy and specialOccupancy are issue-port occupancies of the
	// unpipelined operations, in slots.
	divOccupancy     = 10
	specialOccupancy = 12
	// maxOoOOverlap caps how many independent packets the window can
	// overlap.
	maxOoOOverlap = 8
	// libmOccupancy is the issue cost of one scalar math-library call
	// (exp/log/sin/cos through libm, per lane).
	libmOccupancy = 140
)

// trafficPerAccess estimates bytes of cache/DRAM traffic per dynamic access
// for a site with the given inter-workitem stride: unit strides stream
// whole lines usefully, large or unknown strides waste most of each line,
// uniform accesses stay resident.
func trafficPerAccess(s ir.Stride) float64 {
	const line = 64
	elem := 4.0
	switch {
	case s.Uniform():
		return 0
	case s.Unit():
		return elem
	case !s.Known:
		return line
	default:
		b := math.Abs(float64(s.Elems)) * elem
		return math.Min(b, line)
	}
}

// GroupCycles prices one workgroup of items workitems on one hardware
// thread at the given issue share.
func (d *Device) GroupCycles(c *Cost, items int, issueShare float64) float64 {
	a := d.A
	packets := math.Ceil(float64(items) / float64(c.Width))
	cycles := packets * c.PacketCycles(issueShare)

	if nbar := c.Profile.Counts[ir.OpBarrier]; nbar > 0 {
		// Crossing a barrier switches between workitem contexts; the cost
		// per item grows when the group's live state spills out of cache.
		state := int64(items)*a.BarrierContext + c.LocalBytes
		mult := 1.0
		switch {
		case state > int64(a.L2.Size):
			mult = 10
		case state > int64(a.L1D.Size):
			mult = 4
		}
		cycles += nbar * (a.BarrierCost + float64(items)*a.BarrierItemCost*mult)
	}
	return cycles
}
