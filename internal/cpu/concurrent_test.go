package cpu

import (
	"sync"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// The device span clock must be safe for concurrent Estimate calls (the
// suite runner launches experiments in parallel): every launch claims a
// disjoint [start, end) window and the clock ends at the exact sum of
// launch times. Run under -race this also proves the clock is guarded.
func TestConcurrentEstimateClock(t *testing.T) {
	d := New(arch.XeonE5645())
	rec := obs.NewRecorder()
	d.Obs = rec

	const launches = 64
	nd := ir.Range1D(1<<10, 64)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total units.Duration
	for i := 0; i < launches; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := d.Estimate(squareKernel(), squareArgs(1<<10), nd)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			total += res.Time
			mu.Unlock()
		}()
	}
	wg.Wait()

	// Kernel spans tile the clock: disjoint, and their lengths sum to the
	// final clock value.
	var spanSum units.Duration
	type window struct{ s, e units.Duration }
	var windows []window
	for _, s := range rec.Spans() {
		if s.Kind != obs.KindKernel {
			continue
		}
		spanSum += s.Duration()
		windows = append(windows, window{s.Start, s.End})
	}
	if len(windows) != launches {
		t.Fatalf("kernel spans = %d, want %d", len(windows), launches)
	}
	if spanSum != total {
		t.Errorf("span time sum %v != launch time sum %v", spanSum, total)
	}
	if d.clock != total {
		t.Errorf("device clock %v != launch time sum %v", d.clock, total)
	}
	for i, a := range windows {
		for j, b := range windows {
			if i != j && a.s < b.e && b.s < a.e {
				t.Fatalf("kernel spans overlap: %+v and %+v", a, b)
			}
		}
	}
	if got := rec.Registry().Counter("cpu.launches"); got != launches {
		t.Errorf("cpu.launches = %v, want %d", got, launches)
	}
}
