package cpu

import (
	"fmt"
	"runtime"

	"clperf/internal/cache"
	"clperf/internal/ir"
)

// This file implements the paper's proposed OpenCL improvement (section
// III-E): "coupling logical threads with physical threads... the
// programmer can specify the core where specific workgroup would be
// executed, so that data on different kernels can be shared without a
// memory request". LaunchPinned executes a kernel with an explicit
// workgroup->core mapping against a persistent cache hierarchy, so a
// consumer kernel pinned like its producer really finds the data in the
// producing core's private caches.

// AffinityFunc maps a linear workgroup index to a physical core.
type AffinityFunc func(group int) int

// PinnedResult extends Result with the cache-simulation outcome.
type PinnedResult struct {
	Result
	// StallCycles is the total memory-stall time per core, from the cache
	// hierarchy.
	StallCycles map[int]float64
	// Hierarchy is the cache state after the launch (shared across pinned
	// launches for producer/consumer locality).
	Hierarchy *cache.Hierarchy
}

// pinnedTracer routes the access stream to the mapped core.
type pinnedTracer struct {
	hier   *cache.Hierarchy
	aff    AffinityFunc
	phys   int
	core   int
	stalls map[int]float64
}

func (t *pinnedTracer) BeginGroup(g int) {
	t.core = t.aff(g) % t.phys
	if t.core < 0 {
		t.core += t.phys
	}
}

func (t *pinnedTracer) Access(addr, size int64, write bool) {
	lat := t.hier.Access(t.core, addr, size, write)
	if write {
		lat *= 0.5 // store buffer hides half of store-miss latency
	}
	t.stalls[t.core] += lat
}

// AccessBatch implements ir.BatchTracer: one call per workgroup instead
// of one interface call per access. The records arrive in program order,
// so the hierarchy sees exactly the serial stream.
func (t *pinnedTracer) AccessBatch(_ int, recs []ir.Access) {
	for _, a := range recs {
		lat := t.hier.Access(t.core, a.Addr, a.Size, a.Write)
		if a.Write {
			lat *= 0.5
		}
		t.stalls[t.core] += lat
	}
}

// LaunchPinned functionally executes the kernel with the given
// workgroup->core affinity, charging memory time from the (persistent)
// cache hierarchy instead of the bandwidth floor. Use one hierarchy across
// launches to model producer/consumer cache reuse.
func (d *Device) LaunchPinned(k *ir.Kernel, args *ir.Args, nd ir.NDRange,
	aff AffinityFunc, hier *cache.Hierarchy) (*PinnedResult, error) {
	if aff == nil {
		return nil, fmt.Errorf("cpu: LaunchPinned needs an affinity function")
	}
	if hier == nil {
		hier = cache.NewHierarchy(d.A)
	}
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}

	tracer := &pinnedTracer{
		hier:   hier,
		aff:    aff,
		phys:   d.A.PhysicalCores(),
		stalls: map[int]float64{},
	}
	// Workgroups execute concurrently; the engine buffers each group's
	// accesses and replays them to the tracer in group order from one
	// goroutine, so the cache hierarchy observes the serial stream.
	opts := ir.ExecOptions{Tracer: tracer, Parallel: runtime.GOMAXPROCS(0)}
	if err := ir.ExecRange(k, args, nd, opts); err != nil {
		return nil, fmt.Errorf("cpu: pinned execution of %s: %w", k.Name, err)
	}

	// Per-core busy time: the groups it was assigned plus its cache stalls.
	groups := nd.NumGroups()
	items := nd.GroupItems()
	groupsPerCore := map[int]int{}
	for g := 0; g < groups; g++ {
		c := tracer.aff(g) % tracer.phys
		if c < 0 {
			c += tracer.phys
		}
		groupsPerCore[c]++
	}
	activeCores := len(groupsPerCore)
	issueShare := 1.0 // one pinned thread per core: no SMT contention
	groupCycles := d.GroupCycles(cost, items, issueShare)

	var worst float64
	for c, n := range groupsPerCore {
		busy := float64(n)*groupCycles + tracer.stalls[c] +
			float64(n)*float64(d.A.GroupDispatch)/float64(d.A.Clock.Period())
		if busy > worst {
			worst = busy
		}
	}
	time := d.A.Clock.Cycles(worst) + d.A.LaunchOverhead

	return &PinnedResult{
		Result: Result{
			Kernel:  k.Name,
			ND:      nd,
			Cost:    cost,
			Time:    time,
			Compute: d.A.Clock.Cycles(worst),
			Groups:  groups,
			Workers: activeCores,
		},
		StallCycles: tracer.stalls,
		Hierarchy:   hier,
	}, nil
}
