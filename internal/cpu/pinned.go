package cpu

import (
	"fmt"
	"runtime"

	"clperf/internal/cache"
	"clperf/internal/ir"
)

// This file implements the paper's proposed OpenCL improvement (section
// III-E): "coupling logical threads with physical threads... the
// programmer can specify the core where specific workgroup would be
// executed, so that data on different kernels can be shared without a
// memory request". LaunchPinned executes a kernel with an explicit
// workgroup->core mapping against a persistent cache hierarchy, so a
// consumer kernel pinned like its producer really finds the data in the
// producing core's private caches.

// AffinityFunc maps a linear workgroup index to a physical core.
type AffinityFunc func(group int) int

// PinnedResult extends Result with the cache-simulation outcome.
type PinnedResult struct {
	Result
	// StallCycles is the total memory-stall time per core, from the cache
	// hierarchy.
	StallCycles map[int]float64
	// Hierarchy is the cache state after the launch (shared across pinned
	// launches for producer/consumer locality).
	Hierarchy *cache.Hierarchy
}

// CoreMap normalizes an affinity function to the device's physical
// cores: the affinity may return any int, and the mapping wraps it
// (negative values wrap upward). Both the executed path (LaunchPinned)
// and the trace-replay path (internal/replay) must route workgroup g
// through the same physical core for their stall maps to agree, so the
// normalization lives here, once.
func (d *Device) CoreMap(aff AffinityFunc) func(int) int {
	phys := d.A.PhysicalCores()
	return func(g int) int {
		c := aff(g) % phys
		if c < 0 {
			c += phys
		}
		return c
	}
}

// LaunchPinned functionally executes the kernel with the given
// workgroup->core affinity, charging memory time from the (persistent)
// cache hierarchy instead of the bandwidth floor. Use one hierarchy across
// launches to model producer/consumer cache reuse.
//
// The cache simulation is the two-phase sharded engine (cache.NewSharded):
// each core's private L1/L2 simulate concurrently with the traced
// execution, and the merged miss stream replays through the shared L3 in
// deterministic group order, so the result is bit-identical to the serial
// simulator (cache.NewSerial), which CacheSimOracle selects for
// differential testing.
func (d *Device) LaunchPinned(k *ir.Kernel, args *ir.Args, nd ir.NDRange,
	aff AffinityFunc, hier *cache.Hierarchy) (*PinnedResult, error) {
	if aff == nil {
		return nil, fmt.Errorf("cpu: LaunchPinned needs an affinity function")
	}
	if hier == nil {
		hier = cache.NewHierarchy(d.A)
	}
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}

	coreOf := d.CoreMap(aff)
	var sim cache.Sim
	if d.CacheSimOracle {
		sim = cache.NewSerial(hier, coreOf, cache.StoreWriteFactor)
	} else {
		sim = cache.NewSharded(hier, coreOf, cache.StoreWriteFactor)
	}
	// Workgroups execute concurrently; the engine buffers each group's
	// accesses and flushes them to the simulator in group order, so the
	// cache hierarchy observes the serial stream.
	opts := ir.ExecOptions{Tracer: sim, Parallel: runtime.GOMAXPROCS(0)}
	execErr := ir.ExecRange(k, args, nd, opts)
	stalls := sim.Finish() // always join the shard workers
	if execErr != nil {
		return nil, fmt.Errorf("cpu: pinned execution of %s: %w", k.Name, execErr)
	}
	return d.pricePinned(k.Name, cost, nd, coreOf, stalls, hier), nil
}

// PriceTraced prices a pinned launch whose access stream was simulated
// elsewhere: the trace-once / replay-many path (internal/replay) feeds a
// captured device-independent trace through a fresh hierarchy and hands
// the resulting per-core stall map here. Everything after the simulation
// — local-size resolution, static analysis, the per-core busy-time math —
// is the code LaunchPinned runs, so a replayed PinnedResult is bitwise
// identical to an executed one given equal stalls (which the replay
// package property-tests).
func (d *Device) PriceTraced(k *ir.Kernel, args *ir.Args, nd ir.NDRange,
	aff AffinityFunc, stalls map[int]float64, hier *cache.Hierarchy) (*PinnedResult, error) {
	if aff == nil {
		return nil, fmt.Errorf("cpu: PriceTraced needs an affinity function")
	}
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}
	return d.pricePinned(k.Name, cost, nd, d.CoreMap(aff), stalls, hier), nil
}

// pricePinned is the shared post-simulation pricing: per-core busy time
// is the groups the core was assigned plus its cache stalls plus its
// share of dispatch, and the launch takes as long as its worst core.
func (d *Device) pricePinned(kname string, cost *Cost, nd ir.NDRange,
	coreOf func(int) int, stalls map[int]float64, hier *cache.Hierarchy) *PinnedResult {
	groups := nd.NumGroups()
	items := nd.GroupItems()
	groupsPerCore := map[int]int{}
	for g := 0; g < groups; g++ {
		groupsPerCore[coreOf(g)]++
	}
	activeCores := len(groupsPerCore)
	issueShare := 1.0 // one pinned thread per core: no SMT contention
	groupCycles := d.GroupCycles(cost, items, issueShare)

	var worst float64
	for c, n := range groupsPerCore {
		busy := float64(n)*groupCycles + stalls[c] +
			float64(n)*float64(d.A.GroupDispatch)/float64(d.A.Clock.Period())
		if busy > worst {
			worst = busy
		}
	}
	time := d.A.Clock.Cycles(worst) + d.A.LaunchOverhead

	return &PinnedResult{
		Result: Result{
			Kernel:  kname,
			ND:      nd,
			Cost:    cost,
			Time:    time,
			Compute: d.A.Clock.Cycles(worst),
			Groups:  groups,
			Workers: activeCores,
		},
		StallCycles: stalls,
		Hierarchy:   hier,
	}
}
