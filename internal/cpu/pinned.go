package cpu

import (
	"fmt"
	"runtime"

	"clperf/internal/cache"
	"clperf/internal/ir"
)

// This file implements the paper's proposed OpenCL improvement (section
// III-E): "coupling logical threads with physical threads... the
// programmer can specify the core where specific workgroup would be
// executed, so that data on different kernels can be shared without a
// memory request". LaunchPinned executes a kernel with an explicit
// workgroup->core mapping against a persistent cache hierarchy, so a
// consumer kernel pinned like its producer really finds the data in the
// producing core's private caches.

// AffinityFunc maps a linear workgroup index to a physical core.
type AffinityFunc func(group int) int

// PinnedResult extends Result with the cache-simulation outcome.
type PinnedResult struct {
	Result
	// StallCycles is the total memory-stall time per core, from the cache
	// hierarchy.
	StallCycles map[int]float64
	// Hierarchy is the cache state after the launch (shared across pinned
	// launches for producer/consumer locality).
	Hierarchy *cache.Hierarchy
}

// LaunchPinned functionally executes the kernel with the given
// workgroup->core affinity, charging memory time from the (persistent)
// cache hierarchy instead of the bandwidth floor. Use one hierarchy across
// launches to model producer/consumer cache reuse.
//
// The cache simulation is the two-phase sharded engine (cache.NewSharded):
// each core's private L1/L2 simulate concurrently with the traced
// execution, and the merged miss stream replays through the shared L3 in
// deterministic group order, so the result is bit-identical to the serial
// simulator (cache.NewSerial), which CacheSimOracle selects for
// differential testing.
func (d *Device) LaunchPinned(k *ir.Kernel, args *ir.Args, nd ir.NDRange,
	aff AffinityFunc, hier *cache.Hierarchy) (*PinnedResult, error) {
	if aff == nil {
		return nil, fmt.Errorf("cpu: LaunchPinned needs an affinity function")
	}
	if hier == nil {
		hier = cache.NewHierarchy(d.A)
	}
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}

	// The affinity function may return any int; normalize to a physical
	// core by wrapping (negative values wrap upward).
	phys := d.A.PhysicalCores()
	coreOf := func(g int) int {
		c := aff(g) % phys
		if c < 0 {
			c += phys
		}
		return c
	}
	var sim cache.Sim
	if d.CacheSimOracle {
		sim = cache.NewSerial(hier, coreOf, cache.StoreWriteFactor)
	} else {
		sim = cache.NewSharded(hier, coreOf, cache.StoreWriteFactor)
	}
	// Workgroups execute concurrently; the engine buffers each group's
	// accesses and flushes them to the simulator in group order, so the
	// cache hierarchy observes the serial stream.
	opts := ir.ExecOptions{Tracer: sim, Parallel: runtime.GOMAXPROCS(0)}
	execErr := ir.ExecRange(k, args, nd, opts)
	stalls := sim.Finish() // always join the shard workers
	if execErr != nil {
		return nil, fmt.Errorf("cpu: pinned execution of %s: %w", k.Name, execErr)
	}

	// Per-core busy time: the groups it was assigned plus its cache stalls.
	groups := nd.NumGroups()
	items := nd.GroupItems()
	groupsPerCore := map[int]int{}
	for g := 0; g < groups; g++ {
		groupsPerCore[coreOf(g)]++
	}
	activeCores := len(groupsPerCore)
	issueShare := 1.0 // one pinned thread per core: no SMT contention
	groupCycles := d.GroupCycles(cost, items, issueShare)

	var worst float64
	for c, n := range groupsPerCore {
		busy := float64(n)*groupCycles + stalls[c] +
			float64(n)*float64(d.A.GroupDispatch)/float64(d.A.Clock.Period())
		if busy > worst {
			worst = busy
		}
	}
	time := d.A.Clock.Cycles(worst) + d.A.LaunchOverhead

	return &PinnedResult{
		Result: Result{
			Kernel:  k.Name,
			ND:      nd,
			Cost:    cost,
			Time:    time,
			Compute: d.A.Clock.Cycles(worst),
			Groups:  groups,
			Workers: activeCores,
		},
		StallCycles: stalls,
		Hierarchy:   hier,
	}, nil
}
