package cpu

import (
	"math"
	"testing"

	"clperf/internal/arch"
	"clperf/internal/cache"
	"clperf/internal/ir"
)

func TestLaunchPinnedFunctionalAndStalls(t *testing.T) {
	d := New(arch.XeonE5645())
	const n = 8192
	args := squareArgs(n)
	for i := 0; i < n; i++ {
		args.Buffers["in"].Set(i, float64(i))
	}
	hier := cache.NewHierarchy(d.A)
	res, err := d.LaunchPinned(squareKernel(), args, ir.Range1D(n, 1024),
		func(g int) int { return g }, hier)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 511 {
		x := float32(args.Buffers["in"].Get(i))
		if got, want := args.Buffers["out"].Get(i), float64(x*x); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
	if len(res.StallCycles) != 8 {
		t.Fatalf("stalls recorded for %d cores, want 8 (one per group)", len(res.StallCycles))
	}
	if res.Workers != 8 {
		t.Fatalf("workers = %d, want 8", res.Workers)
	}
	if res.Time <= 0 {
		t.Fatal("pinned launch must take time")
	}
}

// A second pinned launch reading the first one's output runs faster when
// aligned than when shifted — the cache hierarchy persists.
func TestLaunchPinnedReuse(t *testing.T) {
	d := New(arch.XeonE5645())
	run := func(shift int) float64 {
		const (
			cores = 8
			local = 2048
			n     = cores * local
		)
		hier := cache.NewHierarchy(d.A)
		in := ir.NewBufferF32("in", n)
		mid := ir.NewBufferF32("mid", n)
		out := ir.NewBufferF32("out", n)
		base := int64(1 << 22)
		for _, b := range []*ir.Buffer{in, mid, out} {
			b.Base = base
			base += b.Bytes() + 4096
		}
		args1 := ir.NewArgs().Bind("in", in).Bind("out", mid)
		if _, err := d.LaunchPinned(squareKernel(), args1, ir.Range1D(n, local),
			func(g int) int { return g }, hier); err != nil {
			t.Fatal(err)
		}
		args2 := ir.NewArgs().Bind("in", mid).Bind("out", out)
		res, err := d.LaunchPinned(squareKernel(), args2, ir.Range1D(n, local),
			func(g int) int { return (g + shift) % 8 }, hier)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Time)
	}
	aligned, shifted := run(0), run(3)
	if shifted <= aligned {
		t.Fatalf("shifted pinning (%v) should be slower than aligned (%v)", shifted, aligned)
	}
}

func TestLaunchPinnedValidation(t *testing.T) {
	d := New(arch.XeonE5645())
	args := squareArgs(64)
	if _, err := d.LaunchPinned(squareKernel(), args, ir.Range1D(64, 8), nil, nil); err == nil {
		t.Fatal("nil affinity must be rejected")
	}
	// nil hierarchy is allocated on demand.
	res, err := d.LaunchPinned(squareKernel(), args, ir.Range1D(64, 8),
		func(g int) int { return g }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hierarchy == nil {
		t.Fatal("hierarchy must be created when nil")
	}
	// Negative core indices wrap rather than crash.
	if _, err := d.LaunchPinned(squareKernel(), args, ir.Range1D(64, 8),
		func(g int) int { return -g }, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLaunchPinnedOracleBitIdentical: LaunchPinned through the sharded
// engine must match the serial oracle (CacheSimOracle) bitwise — Time,
// per-core StallCycles, and the resulting hierarchy stats.
func TestLaunchPinnedOracleBitIdentical(t *testing.T) {
	const (
		n     = 8192
		local = 512
	)
	run := func(oracle bool) (*PinnedResult, *cache.Hierarchy) {
		d := New(arch.XeonE5645())
		d.CacheSimOracle = oracle
		args := squareArgs(n)
		for i := 0; i < n; i++ {
			args.Buffers["in"].Set(i, float64(i%97))
		}
		hier := cache.NewHierarchy(d.A)
		// Two launches on one hierarchy: the second sees warm caches.
		for pass := 0; pass < 2; pass++ {
			res, err := d.LaunchPinned(squareKernel(), args, ir.Range1D(n, local),
				func(g int) int { return (g * 3) % 8 }, hier)
			if err != nil {
				t.Fatal(err)
			}
			if pass == 1 {
				return res, hier
			}
		}
		panic("unreachable")
	}
	want, hs := run(true)
	got, hp := run(false)

	if got.Time != want.Time {
		t.Fatalf("Time %v, oracle %v", got.Time, want.Time)
	}
	if len(got.StallCycles) != len(want.StallCycles) {
		t.Fatalf("stall map sizes %d vs %d", len(got.StallCycles), len(want.StallCycles))
	}
	for c, w := range want.StallCycles {
		if g := got.StallCycles[c]; math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("core %d stalls %v, oracle %v", c, g, w)
		}
	}
	for c := 0; c < hs.Cores(); c++ {
		w1, w2 := hs.CoreStats(c)
		g1, g2 := hp.CoreStats(c)
		if g1 != w1 || g2 != w2 {
			t.Fatalf("core %d cache stats diverge: L1 %+v vs %+v, L2 %+v vs %+v",
				c, g1, w1, g2, w2)
		}
	}
	if hp.L3Stats() != hs.L3Stats() {
		t.Fatalf("L3 stats %+v, oracle %+v", hp.L3Stats(), hs.L3Stats())
	}
}
