package cpu

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"clperf/internal/arch"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/units"
)

// Device is the CPU compute device: the functional executor plus the timing
// model.
type Device struct {
	A *arch.CPU
	// DefaultLocal is the workgroup size the runtime picks along dimension
	// 0 when the host passes NULL (the largest divisor of the global size
	// not exceeding it is used).
	DefaultLocal int
	// ForceScalar disables the implicit vectorizer (an ablation knob: the
	// runtime compiles every kernel at width 1).
	ForceScalar bool
	// CacheSimOracle makes LaunchPinned simulate the cache hierarchy with
	// the serial reference simulator instead of the sharded engine — the
	// differential oracle for determinism tests. Results are bit-identical
	// either way; serial is just slower.
	CacheSimOracle bool
	// Obs, when set, records every priced launch as a span tree (launch ->
	// dispatch/compute/mem_floor phases) plus per-kernel time histograms.
	// Nil (the default) costs nothing. Spans are laid end to end on the
	// device's own clock, which Estimate advances; the clock is guarded
	// by clockMu, so concurrent Estimate calls are safe (each launch
	// claims a disjoint span window, in arrival order).
	Obs *obs.Recorder
	// clockMu guards clock against concurrent launches.
	clockMu sync.Mutex
	// clock is the device-local span clock (total priced time so far).
	clock units.Duration
}

// New returns a CPU device with the runtime's default NULL-workgroup
// policy.
func New(a *arch.CPU) *Device {
	return &Device{A: a, DefaultLocal: 64}
}

// Name returns the device name.
func (d *Device) Name() string { return d.A.Name }

// Fingerprint canonically encodes every device-side input of Estimate
// outside (kernel, args, NDRange): the full arch parameter set plus the
// runtime knobs. Two devices with equal fingerprints price any launch
// identically, so the fingerprint is the device part of a search cache
// key. It is computed per call because knobs like ForceScalar are
// mutated by ablations between searches.
func (d *Device) Fingerprint() string {
	return fmt.Sprintf("cpu|%+v|dl=%d|fs=%t", *d.A, d.DefaultLocal, d.ForceScalar)
}

// MaxWorkgroup returns the largest workgroup size the device accepts
// (CL_DEVICE_MAX_WORK_GROUP_SIZE), defaulting to 1024 for presets that
// predate the field.
func (d *Device) MaxWorkgroup() int {
	if d.A.MaxWorkgroup > 0 {
		return d.A.MaxWorkgroup
	}
	return 1024
}

// ResolveLocal applies the implementation's workgroup-size policy to an
// NDRange whose local size was left NULL: dimension 0 gets the largest
// divisor of the global size not exceeding DefaultLocal — shrunk further so
// that every hardware thread gets at least one workgroup. (The paper
// observes that this implementation-chosen size is below the explicit-size
// optimum — programmers should set it themselves.)
func (d *Device) ResolveLocal(nd ir.NDRange) ir.NDRange {
	if !nd.LocalNull() {
		return nd
	}
	g := maxi(nd.Global[0], 1)
	limit := d.DefaultLocal
	if spread := g / d.A.LogicalCores(); spread < limit {
		limit = maxi(spread, 1)
	}
	var local [3]int
	local[0] = largestDivisorLE(g, limit)
	local[1], local[2] = 1, 1
	return nd.WithLocal(local)
}

func largestDivisorLE(n, limit int) int {
	if limit >= n {
		return n
	}
	for v := limit; v >= 1; v-- {
		if n%v == 0 {
			return v
		}
	}
	return 1
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result reports the simulated outcome of one kernel launch.
type Result struct {
	Kernel string
	ND     ir.NDRange // with the local size resolved
	Cost   *Cost

	// Time is the simulated kernel execution time.
	Time units.Duration
	// Compute is the scheduling-model component (includes dispatch).
	Compute units.Duration
	// Dispatch is the portion of Compute spent on per-group scheduling.
	Dispatch units.Duration
	// MemFloor is the bandwidth bound.
	MemFloor units.Duration
	// Groups and Workers describe the schedule.
	Groups  int
	Workers int
}

// Throughput returns application flops per second for this launch.
func (r *Result) Throughput() units.Throughput {
	flops := r.Cost.Profile.Counts.Flops() * float64(r.ND.GlobalItems())
	return units.ThroughputOf(flops, r.Time)
}

// LaunchOptions controls Launch.
type LaunchOptions struct {
	// SkipFunctional estimates time without executing the kernel.
	SkipFunctional bool
	// Parallel sets functional-execution workers (default GOMAXPROCS).
	Parallel int
	// Tracer, when set, observes the functional execution's memory
	// accesses. Tracing no longer forces serial execution: the engine
	// buffers each workgroup's accesses and flushes them to the tracer
	// in group order from a single goroutine, so Parallel is honored
	// while the tracer still sees the serial stream.
	Tracer ir.Tracer
}

// Estimate prices a launch without executing it.
func (d *Device) Estimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*Result, error) {
	nd = d.ResolveLocal(nd)
	if err := nd.Validate(); err != nil {
		return nil, err
	}
	cost, err := d.Analyze(k, args, nd)
	if err != nil {
		return nil, err
	}

	a := d.A
	groups := nd.NumGroups()
	items := nd.GroupItems()

	// Schedule: workgroups are tasks over hardware threads. When more
	// threads than physical cores are busy, SMT siblings share issue.
	logical := a.LogicalCores()
	phys := a.PhysicalCores()
	workers := groups
	if workers > logical {
		workers = logical
	}
	issueShare := 1.0
	if workers > phys {
		issueShare = a.SMTYield
	}
	groupCycles := d.GroupCycles(cost, items, issueShare)
	groupTime := a.Clock.Cycles(groupCycles)
	// Workgroups are tasks drained from a shared pool (the runtime work
	// steals), so the makespan follows the fractional load per worker with
	// a one-group minimum.
	perWorker := float64(groups) / float64(workers)
	if perWorker < 1 {
		perWorker = 1
	}
	dispatch := units.Duration(perWorker) * a.GroupDispatch
	compute := units.Duration(perWorker)*groupTime + dispatch

	// Bandwidth floor: total traffic against L3 or DRAM depending on the
	// steady-state working set (kernels are iterated, so resident data
	// stays cached).
	traffic := cost.TrafficPerItem * float64(nd.GlobalItems())
	footprint := argBytes(args)
	bw := a.MemBandwidth
	if footprint > 0 && footprint <= int64(a.L3.Size) {
		bw = a.L3Bandwidth
	}
	memFloor := bw.Transfer(units.ByteSize(traffic))

	time := compute
	if memFloor > time {
		time = memFloor
	}
	time += a.LaunchOverhead

	res := &Result{
		Kernel:   k.Name,
		ND:       nd,
		Cost:     cost,
		Time:     time,
		Compute:  compute,
		Dispatch: dispatch,
		MemFloor: memFloor,
		Groups:   groups,
		Workers:  workers,
	}
	d.observe(res)
	return res, nil
}

// observe records the priced launch into the device's recorder as a
// kernel span with phase children and per-kernel metrics. Phases
// overlap by design (the model takes max(compute, mem_floor)).
func (d *Device) observe(r *Result) {
	if d.Obs == nil {
		return
	}
	rec := d.Obs
	d.clockMu.Lock()
	s := d.clock
	d.clock += r.Time
	d.clockMu.Unlock()
	id := rec.Record(obs.NoParent, obs.KindKernel, "cpu.launch:"+r.Kernel, s, s+r.Time)
	rec.SetTrack(id, "cpu")
	rec.Annotate(id, "workers", strconv.Itoa(r.Workers))
	rec.Annotate(id, "groups", strconv.Itoa(r.Groups))
	if r.Cost != nil {
		rec.Annotate(id, "simd_lanes", strconv.Itoa(r.Cost.Width))
	}
	rec.Record(id, obs.KindPhase, "dispatch", s, s+r.Dispatch)
	rec.Record(id, obs.KindPhase, "compute", s, s+r.Compute)
	rec.Record(id, obs.KindPhase, "mem_floor", s, s+r.MemFloor)
	reg := rec.Registry()
	reg.Observe("cpu.kernel.ns:"+r.Kernel, float64(r.Time))
	reg.Add("cpu.launches", 1)
	if r.Cost != nil {
		reg.Set("cpu.simd_lanes:"+r.Kernel, float64(r.Cost.Width))
	}
}

func argBytes(args *ir.Args) int64 {
	if args == nil {
		return 0
	}
	var n int64
	for _, b := range args.Buffers {
		if b != nil {
			n += b.Bytes()
		}
	}
	return n
}

// Launch functionally executes the kernel (filling the bound buffers) and
// returns the simulated timing.
func (d *Device) Launch(k *ir.Kernel, args *ir.Args, nd ir.NDRange, opts LaunchOptions) (*Result, error) {
	nd = d.ResolveLocal(nd)
	res, err := d.Estimate(k, args, nd)
	if err != nil {
		return nil, err
	}
	if !opts.SkipFunctional {
		par := opts.Parallel
		if par == 0 {
			par = runtime.GOMAXPROCS(0)
		}
		execOpts := ir.ExecOptions{Parallel: par, Tracer: opts.Tracer}
		if err := ir.ExecRange(k, args, res.ND, execOpts); err != nil {
			return nil, fmt.Errorf("cpu: functional execution of %s: %w", k.Name, err)
		}
	}
	return res, nil
}
