package experiments

import (
	"fmt"

	"clperf/internal/cl"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/parboil"
	"clperf/internal/units"
)

// bufferRole classifies how a kernel uses a buffer parameter.
type bufferRole int

const (
	roleRead bufferRole = iota
	roleWrite
	roleReadWrite
)

// bufferRoles derives each buffer's role from the kernel's static access
// sites.
func bufferRoles(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (map[string]bufferRole, error) {
	prof, err := ir.ProfileKernel(k, args, nd, ir.LatencyTable{}, ir.MaxBranch)
	if err != nil {
		return nil, err
	}
	reads := map[string]bool{}
	writes := map[string]bool{}
	for _, a := range prof.Accesses {
		if a.Write {
			writes[a.Buf] = true
		} else {
			reads[a.Buf] = true
		}
	}
	roles := map[string]bufferRole{}
	for _, name := range k.BufferNames() {
		switch {
		case reads[name] && writes[name]:
			roles[name] = roleReadWrite
		case writes[name]:
			roles[name] = roleWrite
		default:
			roles[name] = roleRead
		}
	}
	return roles, nil
}

// transferAPI selects the host data-movement API under test.
type transferAPI int

const (
	apiCopy transferAPI = iota // clEnqueueRead/WriteBuffer
	apiMap                     // clEnqueueMapBuffer
)

// transferRun executes one app configuration through the cl runtime with
// the given memory flags policy and transfer API, returning kernel time and
// total transfer time. The queue is non-functional (costs only), so args
// and roles are read-only and the caller shares them across flag/API
// combinations instead of rebuilding the filled buffers per run.
func transferRun(app *kernels.App, nd ir.NDRange, args *ir.Args, roles map[string]bufferRole, restrictAccess, hostAlloc bool, api transferAPI) (kernel, transfer units.Duration, err error) {
	ctx := cl.NewContext(cl.CPUDevice())
	q := cl.NewQueue(ctx)
	q.SetFunctional(false)

	k, err := ctx.CreateKernel(app.Kernel)
	if err != nil {
		return 0, 0, err
	}

	bufs := map[string]*cl.Buffer{}
	for _, name := range app.Kernel.BufferNames() {
		flags := cl.MemReadWrite
		if restrictAccess {
			switch roles[name] {
			case roleRead:
				flags = cl.MemReadOnly
			case roleWrite:
				flags = cl.MemWriteOnly
			}
		}
		if hostAlloc {
			flags |= cl.MemAllocHostPtr
		}
		src := args.Buffers[name]
		b, err := ctx.CreateBuffer(flags, src.Elem, src.Len())
		if err != nil {
			return 0, 0, err
		}
		bufs[name] = b
		if err := k.SetBufferArg(name, b); err != nil {
			return 0, 0, err
		}
	}
	for name, v := range args.Scalars {
		if err := k.SetScalarArg(name, v); err != nil {
			return 0, 0, err
		}
	}

	// Host -> device for kernel inputs.
	for name, b := range bufs {
		if roles[name] == roleWrite {
			continue
		}
		src := args.Buffers[name].Data
		switch api {
		case apiCopy:
			if _, err := q.EnqueueWriteBuffer(b, src); err != nil {
				return 0, 0, err
			}
		case apiMap:
			view, _, err := q.EnqueueMapBuffer(b, cl.MapWrite)
			if err != nil {
				return 0, 0, err
			}
			copy(view, src)
			if _, err := q.EnqueueUnmapBuffer(b); err != nil {
				return 0, 0, err
			}
		}
	}

	ke, err := q.EnqueueNDRangeKernel(k, nd)
	if err != nil {
		return 0, 0, err
	}

	// Device -> host for kernel outputs.
	for name, b := range bufs {
		if roles[name] == roleRead {
			continue
		}
		dst := make([]float64, b.Len())
		switch api {
		case apiCopy:
			if _, err := q.EnqueueReadBuffer(b, dst); err != nil {
				return 0, 0, err
			}
		case apiMap:
			view, _, err := q.EnqueueMapBuffer(b, cl.MapRead)
			if err != nil {
				return 0, 0, err
			}
			copy(dst, view)
			if _, err := q.EnqueueUnmapBuffer(b); err != nil {
				return 0, 0, err
			}
		}
	}

	kernel = ke.Time()
	for _, ev := range q.Events() {
		if ev.Command != "clEnqueueNDRangeKernel:"+app.Kernel.Name {
			transfer += ev.Duration()
		}
	}
	return kernel, transfer, nil
}

// Fig7 reproduces Figure 7: application throughput (Equation 1) of mapping
// over copying, for all four combinations of access flags and allocation
// location.
func Fig7() harness.Experiment {
	return harness.Experiment{
		ID:    "fig7",
		Title: "Mapping vs copying across allocation-flag combinations",
		Run: func(opts harness.Options) (*harness.Report, error) {
			combos := []struct {
				name                      string
				restrictAccess, hostAlloc bool
			}{
				{"ReadOnly or WriteOnly, Allocation on Device", true, false},
				{"ReadOnly or WriteOnly, Allocation on Host", true, true},
				{"Read Write, Allocation on Device", false, false},
				{"Read Write, Allocation on Host", false, true},
			}
			apps := []*kernels.App{kernels.Square(), kernels.VectorAdd(), kernels.BlackScholes()}
			fig := &harness.Figure{
				Title:  "Figure 7",
				XLabel: "benchmark",
				YLabel: "throughput of mapping normalized to copying",
			}
			series := make([][]float64, len(combos))
			for _, app := range apps {
				for ci, nd := range app.Configs {
					fig.Labels = append(fig.Labels, fmt.Sprintf("%s_%d", app.Name, ci+1))
					args := app.Make(nd)
					roles, err := bufferRoles(app.Kernel, args, cl.CPUDevice().CPU.ResolveLocal(nd))
					if err != nil {
						return nil, fmt.Errorf("%s roles: %w", app.Name, err)
					}
					for comboIdx, combo := range combos {
						kc, tc, err := transferRun(app, nd, args, roles, combo.restrictAccess, combo.hostAlloc, apiCopy)
						if err != nil {
							return nil, fmt.Errorf("%s copy: %w", app.Name, err)
						}
						km, tm, err := transferRun(app, nd, args, roles, combo.restrictAccess, combo.hostAlloc, apiMap)
						if err != nil {
							return nil, fmt.Errorf("%s map: %w", app.Name, err)
						}
						copyThr := 1 / (kc + tc).Seconds()
						mapThr := 1 / (km + tm).Seconds()
						series[comboIdx] = append(series[comboIdx], mapThr/copyThr)
					}
				}
			}
			for i, combo := range combos {
				fig.Add(combo.name, series[i])
			}
			rep := &harness.Report{ID: "fig7",
				Title:   "Mapping APIs vs explicit data transfer",
				Figures: []*harness.Figure{fig}}
			min, max := series[0][0], series[0][0]
			for _, s := range series {
				for _, v := range s {
					if v < min {
						min = v
					}
					if v > max {
						max = v
					}
				}
			}
			rep.AddNote("map/copy throughput ratio range: %.3g .. %.3g (mapping superior everywhere when > 1)", min, max)
			return rep, nil
		},
	}
}

// Fig8 reproduces Figure 8: Parboil data transfer time, host->device
// (upper) and device->host (lower), with copying vs mapping APIs.
func Fig8() harness.Experiment {
	return harness.Experiment{
		ID:    "fig8",
		Title: "Parboil data transfer time, copy vs map",
		Run: func(opts harness.Options) (*harness.Report, error) {
			benches := []string{"CP", "MRI-Q", "MRI-FHD"}
			h2d := &harness.Figure{Title: "Figure 8 (upper): host to device",
				XLabel: "benchmark", YLabel: "data transfer time (ms)", Labels: benches}
			d2h := &harness.Figure{Title: "Figure 8 (lower): device to host",
				XLabel: "benchmark", YLabel: "data transfer time (ms)", Labels: benches}

			var copyH2D, mapH2D, copyD2H, mapD2H []float64
			for _, bench := range benches {
				var ch, mh, cd, md units.Duration
				for _, e := range parboil.Entries() {
					if e.Bench != bench {
						continue
					}
					args := e.Make()
					roles, err := bufferRoles(e.Kernel, args, e.ND)
					if err != nil {
						return nil, err
					}
					ctx := cl.NewContext(cl.CPUDevice())
					q := cl.NewQueue(ctx)
					for name, src := range args.Buffers {
						b, err := ctx.CreateBuffer(cl.MemReadWrite, src.Elem, src.Len())
						if err != nil {
							return nil, err
						}
						role := roles[name]
						if role != roleWrite { // an input: host -> device
							ev, err := q.EnqueueWriteBuffer(b, src.Data)
							if err != nil {
								return nil, err
							}
							ch += ev.Duration()
							view, mev, err := q.EnqueueMapBuffer(b, cl.MapWrite)
							if err != nil {
								return nil, err
							}
							copy(view, src.Data)
							uev, err := q.EnqueueUnmapBuffer(b)
							if err != nil {
								return nil, err
							}
							mh += mev.Duration() + uev.Duration()
						}
						if role != roleRead { // an output: device -> host
							dst := make([]float64, src.Len())
							ev, err := q.EnqueueReadBuffer(b, dst)
							if err != nil {
								return nil, err
							}
							cd += ev.Duration()
							_, mev, err := q.EnqueueMapBuffer(b, cl.MapRead)
							if err != nil {
								return nil, err
							}
							uev, err := q.EnqueueUnmapBuffer(b)
							if err != nil {
								return nil, err
							}
							md += mev.Duration() + uev.Duration()
						}
					}
				}
				copyH2D = append(copyH2D, ch.Milliseconds())
				mapH2D = append(mapH2D, mh.Milliseconds())
				copyD2H = append(copyD2H, cd.Milliseconds())
				mapD2H = append(mapD2H, md.Milliseconds())
			}
			h2d.Add("Copying", copyH2D)
			h2d.Add("Mapping", mapH2D)
			d2h.Add("Copying", copyD2H)
			d2h.Add("Mapping", mapD2H)
			rep := &harness.Report{ID: "fig8",
				Title:   "Data transfer time with different APIs",
				Figures: []*harness.Figure{h2d, d2h}}
			rep.AddNote("mapping transfer time is below copying for every benchmark in both directions")
			return rep, nil
		},
	}
}
