package experiments

import (
	"fmt"

	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/parboil"
	"clperf/internal/units"
)

// coarsenPoint prices one (kernel, config, factor) point on a device and
// returns throughput in work-per-second terms (total work is constant
// across factors, so 1/time normalizes correctly).
func coarsenThroughput(time units.Duration) float64 {
	if time <= 0 {
		return 0
	}
	return 1 / time.Seconds()
}

// Fig1 reproduces Figure 1: Square and Vectoraddition with 1/10/100/1000
// workitems coalesced, on the CPU (top) and GPU (bottom), normalized to the
// uncoarsened run of each configuration.
func Fig1() harness.Experiment {
	return harness.Experiment{
		ID:    "fig1",
		Title: "Workload per workitem (coarsening), Square and Vectoraddition",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			factors := []int{1, 10, 100, 1000}
			apps := []*kernels.App{kernels.Square(), kernels.VectorAdd()}

			rep := &harness.Report{ID: "fig1", Title: "Performance with different workload per workitem"}
			for _, devName := range []string{"CPU", "GPU"} {
				fig := &harness.Figure{
					Title:  fmt.Sprintf("Figure 1 (%s)", devName),
					XLabel: "benchmark",
					YLabel: "normalized throughput",
				}
				series := make([][]float64, len(factors))
				for _, app := range apps {
					for ci, nd := range app.Configs {
						label := fmt.Sprintf("%s_%d", app.Name, ci+1)
						fig.Labels = append(fig.Labels, label)
						args := staticArgsFor(app, nd)
						var base float64
						for fi, f := range factors {
							k, err := kernels.Coarsen(app.Kernel, f)
							if err != nil {
								return nil, err
							}
							cnd, err := kernels.CoarsenRange(nd, f)
							if err != nil {
								return nil, err
							}
							var t units.Duration
							if devName == "CPU" {
								t, err = tb.cpuTime(k, args, cnd)
							} else {
								t, err = tb.gpuTime(k, args, cnd)
							}
							if err != nil {
								return nil, err
							}
							thr := coarsenThroughput(t)
							if fi == 0 {
								base = thr
							}
							series[fi] = append(series[fi], thr/base)
						}
					}
				}
				names := []string{"base", "10", "100", "1000"}
				for fi := range factors {
					fig.Add(fmt.Sprintf("%s(%s)", names[fi], devName), series[fi])
				}
				rep.Figures = append(rep.Figures, fig)
			}
			noteShapes(rep)
			return rep, nil
		},
	}
}

func noteShapes(rep *harness.Report) {
	// Shape summary: CPU should gain from coarsening, GPU should lose.
	for _, fig := range rep.Figures {
		if len(fig.Series) < 2 {
			continue
		}
		first := fig.Series[0].Values
		last := fig.Series[len(fig.Series)-1].Values
		up, down := 0, 0
		for i := range first {
			if i < len(last) {
				if last[i] > first[i]*1.05 {
					up++
				}
				if last[i] < first[i]*0.95 {
					down++
				}
			}
		}
		rep.AddNote("%s: %d/%d points improve at max coarsening, %d degrade",
			fig.Title, up, len(first), down)
	}
}

// staticArgsFor builds lightweight arguments for timing-only estimation:
// buffers are allocated (so footprints and element types are right) but
// filled lazily only when functional execution is requested.
func staticArgsFor(app *kernels.App, nd ir.NDRange) *ir.Args {
	return app.Make(nd)
}

// Fig2 reproduces Figure 2: the Parboil kernels with base/2x/4x workload
// per workitem on the CPU.
func Fig2() harness.Experiment {
	return harness.Experiment{
		ID:    "fig2",
		Title: "Workload per workitem (coarsening), Parboil on CPU",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			factors := []int{1, 2, 4}
			fig := &harness.Figure{
				Title:  "Figure 2",
				XLabel: "kernel",
				YLabel: "normalized throughput",
			}
			series := make([][]float64, len(factors))
			for _, e := range parboil.Entries() {
				fig.Labels = append(fig.Labels, e.Bench+":"+e.Kernel.Name)
				args := e.Make()
				var base float64
				for fi, f := range factors {
					k, err := kernels.Coarsen(e.Kernel, f)
					if err != nil {
						return nil, err
					}
					cnd, err := kernels.CoarsenRange(e.ND, f)
					if err != nil {
						return nil, err
					}
					t, err := tb.cpuTime(k, args, cnd)
					if err != nil {
						return nil, err
					}
					thr := coarsenThroughput(t)
					if fi == 0 {
						base = thr
					}
					series[fi] = append(series[fi], thr/base)
				}
			}
			names := []string{"base", "2X", "4X"}
			for fi := range factors {
				fig.Add(names[fi], series[fi])
			}
			rep := &harness.Report{ID: "fig2",
				Title:   "Parboil performance with different workload per workitem",
				Figures: []*harness.Figure{fig}}
			noteShapes(rep)
			return rep, nil
		},
	}
}
