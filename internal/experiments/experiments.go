// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment builds the paper's workloads from
// internal/kernels, internal/parboil and internal/microbench, prices them on
// the CPU and GPU device models (through the internal/cl runtime where the
// experiment is about host-API behaviour), and reports the same rows and
// series the paper plots.
package experiments

import (
	"fmt"
	"sort"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/obs"
	"clperf/internal/search"
	"clperf/internal/units"
)

// testbed bundles the paper's two devices behind per-experiment
// memoized evaluators: sweeps that revisit a launch (shared baselines,
// repeated endpoints) price it once.
type testbed struct {
	cpu *cpu.Device
	gpu *gpu.Device
	// cpuEval/gpuEval memoize the estimates over one shared cache. They
	// run with Workers = 1: the devices record spans onto the
	// experiment's recorder, whose stream the suite determinism test
	// compares byte-for-byte, so evaluation order must stay the call
	// order. (Cache hits/misses are order-independent and recorded too.)
	cpuEval *search.Evaluator[*cpu.Result]
	gpuEval *search.Evaluator[*gpu.Result]
}

func newTestbed(opts harness.Options) *testbed {
	tb := &testbed{cpu: cpu.New(arch.XeonE5645()), gpu: gpu.New(arch.GTX580())}
	// Attach the caller's recorder so every priced launch in the
	// experiment records spans and per-kernel metrics (cmd/clprof).
	tb.cpu.Obs = opts.Obs
	tb.gpu.Obs = opts.Obs
	var c *search.Cache
	if !opts.NoCache {
		c = search.NewCache(0)
	}
	rec := func() *obs.Recorder { return opts.Obs }
	tb.cpuEval = search.NewEvaluator(tb.cpu.Fingerprint, tb.cpu.Estimate, c, rec)
	tb.gpuEval = search.NewEvaluator(tb.gpu.Fingerprint, tb.gpu.Estimate, c, rec)
	tb.cpuEval.Workers = 1
	tb.gpuEval.Workers = 1
	return tb
}

// cpuEstimate prices a launch on the CPU model through the memo layer.
func (tb *testbed) cpuEstimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*cpu.Result, error) {
	return tb.cpuEval.Estimate(k, args, nd)
}

// gpuEstimate prices a launch on the GPU model through the memo layer.
func (tb *testbed) gpuEstimate(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (*gpu.Result, error) {
	return tb.gpuEval.Estimate(k, args, nd)
}

// cpuTime prices a launch on the CPU model.
func (tb *testbed) cpuTime(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (units.Duration, error) {
	res, err := tb.cpuEstimate(k, args, nd)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// gpuTime prices a launch on the GPU model.
func (tb *testbed) gpuTime(k *ir.Kernel, args *ir.Args, nd ir.NDRange) (units.Duration, error) {
	res, err := tb.gpuEstimate(k, args, nd)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// All returns every experiment, in paper order.
func All() []harness.Experiment {
	return []harness.Experiment{
		Table1(),
		Table2(),
		Table3(),
		Table4(),
		Table5(),
		Fig1(),
		Fig2(),
		Fig3(),
		Fig4(),
		Fig5(),
		Fig6(),
		Fig7(),
		Fig8(),
		Fig9(),
		Fig10(),
		Fig11(),
		ExtAffinity(),
		ExtHetero(),
		ExtScaling(),
		ExtSIMD(),
		ExtRoofline(),
		Ablation(),
	}
}

// Standalone returns experiments that run only when addressed by id.
// They stay out of All() because results.txt — the checked-in render of
// the full suite — must not change as new studies land; ByID and the
// oclbench -list output cover both sets.
func Standalone() []harness.Experiment {
	return []harness.Experiment{
		Matrix(),
	}
}

// ByID returns the experiment with the given id, searching the suite
// (All) and the standalone set.
func ByID(id string) (harness.Experiment, error) {
	all := append(All(), Standalone()...)
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return harness.Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
