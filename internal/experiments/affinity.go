package experiments

import (
	"clperf/internal/arch"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
	"clperf/internal/omp"
	"clperf/internal/units"
)

// Affinity experiment geometry: eight cores, one contiguous chunk each, and
// a per-chunk working set that fits a core's private caches so alignment of
// the second computation with the first decides between private-cache hits
// and shared-L3 round trips.
const (
	affinityThreads = 8
	affinityChunk   = 16384 // floats per core per buffer (64 KiB)
)

// runAffinity executes the paper's two dependent computations
// (Vector Addition producing c, then Vector Multiplication consuming c)
// with the given mapping of second-computation threads to cores, returning
// the second region's time. When rec is observing, the final cache
// hierarchy publishes per-core hit rates under cache.fig9.<label> (the
// misaligned mapping shows up as a collapsed per-core L1/L2 hit rate).
func runAffinity(secondAffinity []int, rec *obs.Recorder, label string) (units.Duration, error) {
	rt := omp.New(arch.XeonE5645())
	rt.NumThreads = affinityThreads
	rt.ProcBind = true
	rt.CPUAffinity = []int{0, 1, 2, 3, 4, 5, 6, 7}
	rt.EnableCacheSim()

	n := affinityThreads * affinityChunk
	a := ir.NewBufferF32("a", n)
	b := ir.NewBufferF32("b", n)
	c := ir.NewBufferF32("c", n)
	d := ir.NewBufferF32("d", n)
	kernels.FillUniform(a, 301, -1, 1)
	kernels.FillUniform(b, 302, -1, 1)
	// Give the buffers distinct simulated addresses.
	base := int64(1 << 22)
	for _, buf := range []*ir.Buffer{a, b, c, d} {
		buf.Base = base
		base += buf.Bytes() + 4096
	}

	addArgs := ir.NewArgs().Bind("a", a).Bind("b", b).Bind("c", c)
	if _, err := rt.ParallelFor(kernels.VectorAddKernel(), addArgs, n, omp.Static); err != nil {
		return 0, err
	}

	// Computation 2 consumes c: d = c * c.
	rt.CPUAffinity = secondAffinity
	mulArgs := ir.NewArgs().Bind("a", c).Bind("b", c).Bind("c", d)
	res, err := rt.ParallelFor(kernels.VectorMulKernel(), mulArgs, n, omp.Static)
	if err != nil {
		return 0, err
	}
	rt.Hierarchy().PublishMetricsPrefix(rec.Registry(), "cache.fig9."+label)
	return res.Time, nil
}

// Fig9 reproduces Figure 9: the aligned mapping (the consumer of a chunk
// runs on the core that produced it) versus the misaligned mapping (every
// chunk moves to a different core).
func Fig9() harness.Experiment {
	return harness.Experiment{
		ID:    "fig9",
		Title: "CPU affinity: aligned vs misaligned dependent kernels",
		Run: func(opts harness.Options) (*harness.Report, error) {
			aligned, err := runAffinity([]int{0, 1, 2, 3, 4, 5, 6, 7}, opts.Obs, "aligned")
			if err != nil {
				return nil, err
			}
			misaligned, err := runAffinity([]int{1, 2, 3, 4, 5, 6, 7, 0}, opts.Obs, "misaligned")
			if err != nil {
				return nil, err
			}
			t := &harness.Table{Title: "Figure 9: Performance impact of CPU affinity",
				Columns: []string{"Mapping", "Computation 2 time", "normalized"}}
			t.AddRow("aligned", aligned, 1.0)
			t.AddRow("misaligned", misaligned, misaligned.Seconds()/aligned.Seconds())
			rep := &harness.Report{ID: "fig9",
				Title:  "Performance impact of CPU affinity",
				Tables: []*harness.Table{t}}
			rep.AddNote("misaligned runs %.1f%% longer than aligned (paper: ~15%%)",
				100*(misaligned.Seconds()/aligned.Seconds()-1))
			return rep, nil
		},
	}
}
