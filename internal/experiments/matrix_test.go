package experiments

import (
	"bytes"
	"strings"
	"testing"

	"clperf/internal/harness"
)

// render runs the matrix experiment with the given options and returns
// the rendered report.
func renderMatrix(t *testing.T, opts harness.Options) string {
	t.Helper()
	rep, err := Matrix().Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.String()
}

// TestMatrixReplayModesIdentical is the experiment-level A/B contract:
// -noreplay must restore the execute-per-device behavior with
// byte-identical output.
func TestMatrixReplayModesIdentical(t *testing.T) {
	replayed := renderMatrix(t, harness.Options{MatrixN: 3})
	naive := renderMatrix(t, harness.Options{MatrixN: 3, NoReplay: true})
	if replayed != naive {
		t.Fatalf("matrix output differs between replay and -noreplay:\n--- replay ---\n%s\n--- noreplay ---\n%s", replayed, naive)
	}
	if !strings.Contains(replayed, "portability") {
		t.Fatal("matrix report lost its portability column")
	}
}

// TestMatrixGridShape checks MatrixN truncation and the full grid's
// dimensions against the zoo.
func TestMatrixGridShape(t *testing.T) {
	rep, err := Matrix().Run(harness.Options{MatrixN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("%d tables, want 2", len(rep.Tables))
	}
	tuned, times := rep.Tables[0], rep.Tables[1]
	if len(tuned.Rows) != 2 || len(times.Rows) != 2 {
		t.Fatalf("rows = %d/%d, want 2/2", len(tuned.Rows), len(times.Rows))
	}
	// Benchmark + 2 devices + portability / + GTX column.
	if len(tuned.Columns) != 4 || len(times.Columns) != 4 {
		t.Fatalf("columns = %d/%d, want 4/4", len(tuned.Columns), len(times.Columns))
	}
}

// TestMatrixIsStandalone pins the suite contract: the matrix experiment
// is reachable by id but must not join All() — results.txt is the
// checked-in render of All() and may not change.
func TestMatrixIsStandalone(t *testing.T) {
	if _, err := ByID("matrix"); err != nil {
		t.Fatalf("ByID(matrix): %v", err)
	}
	for _, e := range All() {
		if e.ID == "matrix" {
			t.Fatal("matrix leaked into All(); results.txt would change")
		}
	}
	found := false
	for _, e := range Standalone() {
		if e.ID == "matrix" {
			found = true
		}
	}
	if !found {
		t.Fatal("matrix missing from Standalone()")
	}
}
