package experiments

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/microbench"
)

// ExtSIMD contrasts the paper's 4-wide SSE Westmere with the 8-wide AVX
// Sandy Bridge its introduction names: vectorizable kernels track the SIMD
// width per core, scalar-fallback kernels (libm, atomics) do not — the
// introduction's claim that "a CPU has more vector units, the performance
// gap between CPUs and GPUs has been decreased", quantified.
func ExtSIMD() harness.Experiment {
	return harness.Experiment{
		ID:    "ext-simd",
		Title: "SIMD width: SSE (4-wide) Westmere vs AVX (8-wide) Sandy Bridge",
		Run: func(opts harness.Options) (*harness.Report, error) {
			sse := cpu.New(arch.XeonE5645())
			avx := cpu.New(arch.SandyBridge())

			t := &harness.Table{
				Title: "Per-core cycles per workitem (lower is better)",
				Columns: []string{"Kernel", "SSE 4-wide", "AVX 8-wide",
					"per-core speedup", "vectorized"},
			}
			type probe struct {
				name string
				k    *ir.Kernel
				args *ir.Args
				nd   ir.NDRange
			}
			mb := microbench.MBenches()[0]
			probes := []probe{
				{"square", kernels.SquareKernel(),
					kernels.Square().Make(ir.Range1D(1<<16, 256)), ir.Range1D(1<<16, 256)},
				{"mbench1 (poly + RMW)", mb.Kernel, mb.Make(), ir.Range1D(mb.Items, mb.Local)},
				{"blackscholes (libm: scalar)", kernels.BlackScholesKernel(),
					kernels.BlackScholes().Make(ir.Range2D(256, 256, 16, 16)),
					ir.Range2D(256, 256, 16, 16)},
			}
			for _, pb := range probes {
				cSSE, err := sse.Analyze(pb.k, pb.args, pb.nd)
				if err != nil {
					return nil, fmt.Errorf("%s sse: %w", pb.name, err)
				}
				cAVX, err := avx.Analyze(pb.k, pb.args, pb.nd)
				if err != nil {
					return nil, fmt.Errorf("%s avx: %w", pb.name, err)
				}
				t.AddRow(pb.name, cSSE.ItemCycles(), cAVX.ItemCycles(),
					cSSE.ItemCycles()/cAVX.ItemCycles(),
					fmt.Sprint(cSSE.Vec.Vectorized))
			}
			rep := &harness.Report{ID: "ext-simd",
				Title:  "SIMD width sensitivity",
				Tables: []*harness.Table{t}}
			rep.AddNote("vectorizable kernels gain ~2x per core from doubling the lanes; libm-bound kernels gain nothing")
			return rep, nil
		},
	}
}
