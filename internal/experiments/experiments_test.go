package experiments

import (
	"fmt"
	"strings"
	"testing"

	"clperf/internal/harness"
)

func runExp(t *testing.T, id string) *harness.Report {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(harness.Options{})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return rep
}

func series(t *testing.T, fig *harness.Figure, name string) []float64 {
	t.Helper()
	for _, s := range fig.Series {
		if strings.HasPrefix(s.Name, name) {
			return s.Values
		}
	}
	t.Fatalf("figure %q has no series %q", fig.Title, name)
	return nil
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		ids[e.ID] = true
	}
	for _, want := range []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11",
	} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID must reject unknown ids")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5"} {
		rep := runExp(t, id)
		if len(rep.Tables) == 0 {
			t.Errorf("%s: no tables", id)
			continue
		}
		if len(rep.Tables[0].Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
	// Table I must carry the paper's headline numbers.
	rep := runExp(t, "table1")
	var flat string
	for _, row := range rep.Tables[0].Rows {
		flat += strings.Join(row, " ") + "\n"
	}
	for _, want := range []string{"230.4GFlop/s", "2.4GHz", "GTX 580", "Xeon"} {
		if !strings.Contains(flat, want) {
			t.Errorf("table1 missing %q:\n%s", want, flat)
		}
	}
}

// Figure 1: coarsening helps every CPU point and never helps the GPU.
func TestFig1Shape(t *testing.T) {
	rep := runExp(t, "fig1")
	if len(rep.Figures) != 2 {
		t.Fatalf("fig1 should have CPU and GPU figures")
	}
	cpuFig, gpuFig := rep.Figures[0], rep.Figures[1]

	base := series(t, cpuFig, "base")
	top := series(t, cpuFig, "1000")
	for i := range base {
		if top[i] < base[i]*1.3 {
			t.Errorf("CPU %s: x1000 coarsening gain %.2f, want >= 1.3", cpuFig.Labels[i], top[i])
		}
		if top[i] > 10 {
			t.Errorf("CPU %s: gain %.2f implausibly large", cpuFig.Labels[i], top[i])
		}
	}

	gbase := series(t, gpuFig, "base")
	gtop := series(t, gpuFig, "1000")
	degraded := 0
	for i := range gbase {
		if gtop[i] > gbase[i]*1.05 {
			t.Errorf("GPU %s: coarsening should not help (%.2f)", gpuFig.Labels[i], gtop[i])
		}
		if gtop[i] < 0.5 {
			degraded++
		}
	}
	if degraded < 3 {
		t.Errorf("GPU: only %d points degraded significantly, want >= 3", degraded)
	}
}

// Figure 2: cenergy and the computeQ kernels gain, RhoPhi stays flat.
func TestFig2Shape(t *testing.T) {
	rep := runExp(t, "fig2")
	fig := rep.Figures[0]
	base := series(t, fig, "base")
	x4 := series(t, fig, "4X")
	for i, label := range fig.Labels {
		ratio := x4[i] / base[i]
		switch {
		case strings.Contains(label, "cenergy"):
			if ratio < 1.2 {
				t.Errorf("%s: x4 gain %.2f, want >= 1.2", label, ratio)
			}
		case strings.Contains(label, "RhoPhi"):
			if ratio < 0.8 || ratio > 1.25 {
				t.Errorf("%s should stay flat, got %.2f", label, ratio)
			}
		case strings.Contains(label, "computeQ") || strings.Contains(label, "FH"):
			if ratio < 1.0 {
				t.Errorf("%s: x4 should not degrade, got %.2f", label, ratio)
			}
		}
	}
}

// Figure 3: workgroup-size behaviour per the paper's three categories.
func TestFig3Shape(t *testing.T) {
	rep := runExp(t, "fig3")
	cpuFig, gpuFig := rep.Figures[0], rep.Figures[1]
	case1 := series(t, cpuFig, "case_1")
	case4 := series(t, cpuFig, "case_4")
	for i, label := range cpuFig.Labels {
		switch {
		case strings.HasPrefix(label, "Square") || strings.HasPrefix(label, "Vectoraddition"):
			// Category 1: rises with workgroup size; case_1 is terrible.
			if case1[i] > 0.5 {
				t.Errorf("CPU %s case_1 = %.2f, want << 1", label, case1[i])
			}
			if case4[i] < case1[i]*2 {
				t.Errorf("CPU %s: case_4 (%.2f) should dwarf case_1 (%.2f)", label, case4[i], case1[i])
			}
		case strings.HasPrefix(label, "Matrixmul_"):
			// Category 2: the CPU optimum is 8x8, above the 16x16 base.
			if case4[i] <= 1.0 {
				t.Errorf("CPU %s: 8x8 (%.2f) should beat 16x16 base", label, case4[i])
			}
		case strings.HasPrefix(label, "Blackscholes"):
			// Category 3: flat on the CPU.
			if case1[i] < 0.8 || case4[i] > 1.2 {
				t.Errorf("CPU %s not flat: case_1 %.2f case_4 %.2f", label, case1[i], case4[i])
			}
		}
	}
	// On the GPU Matrixmul's base 16x16 is the optimum.
	gcase4 := series(t, gpuFig, "case_4")
	for i, label := range gpuFig.Labels {
		if strings.HasPrefix(label, "Matrixmul_") && gcase4[i] >= 1.0 {
			t.Errorf("GPU %s: 8x8 (%.2f) should stay below the 16x16 base", label, gcase4[i])
		}
		if strings.HasPrefix(label, "Blackscholes") {
			g1 := series(t, gpuFig, "case_1")
			if g1[i] > 0.2 {
				t.Errorf("GPU %s case_1 = %.2f, want << 1", label, g1[i])
			}
		}
	}
}

// Figure 4: Blackscholes flat on CPU, strongly size-dependent on GPU.
func TestFig4Shape(t *testing.T) {
	rep := runExp(t, "fig4")
	cpuFig, gpuFig := rep.Figures[0], rep.Figures[1]
	for _, s := range cpuFig.Series {
		for i, v := range s.Values {
			if v < 0.8 || v > 1.1 {
				t.Errorf("CPU %s[%d] = %.3f, want flat near 1", s.Name, i, v)
			}
		}
	}
	small := series(t, gpuFig, "1X1")
	big := series(t, gpuFig, "16X16(GPU)")
	for i := range small {
		if big[i] < small[i]*5 {
			t.Errorf("GPU: 16x16 (%.2f) should be >> 1x1 (%.2f)", big[i], small[i])
		}
	}
}

// Figure 5: cenergy gains along X until the SIMD width saturates.
func TestFig5Shape(t *testing.T) {
	rep := runExp(t, "fig5")
	fig := rep.Figures[0]
	x := series(t, fig, "CP: cenergy(X)")
	if x[0] != 1 || x[2] < 3.5 {
		t.Errorf("cenergy(X) = %v, want ~[1 2 4 ...]", x)
	}
	if x[4] < x[2]*0.9 {
		t.Errorf("cenergy(X) should saturate, not regress: %v", x)
	}
	y := series(t, fig, "CP: cenergy(Y)")
	for i, v := range y {
		if v < 0.9 || v > 1.5 {
			t.Errorf("cenergy(Y)[%d] = %.2f, want ~flat (already vector-wide)", i, v)
		}
	}
}

// Figure 6: CPU throughput scales with ILP then saturates; GPU is flat.
func TestFig6Shape(t *testing.T) {
	rep := runExp(t, "fig6")
	fig := rep.Figures[0]
	cpu := series(t, fig, "CPU")
	gpu := series(t, fig, "GPU")
	if cpu[1] < cpu[0]*1.7 || cpu[3] < cpu[0]*2.5 {
		t.Errorf("CPU must scale with ILP: %v", cpu)
	}
	if cpu[4] > cpu[3]*1.15 {
		t.Errorf("CPU must saturate by ILP 4-5: %v", cpu)
	}
	if gpu[4] > gpu[0]*1.15 || gpu[4] < gpu[0]*0.85 {
		t.Errorf("GPU must stay flat: %v", gpu)
	}
	// GPU absolute throughput is far above the CPU's, as in the paper.
	if gpu[0] < cpu[4] {
		t.Errorf("GPU (%v) should outrun the CPU (%v)", gpu[0], cpu[4])
	}
}

// Figure 7: mapping beats copying for every benchmark and flag combination.
func TestFig7Shape(t *testing.T) {
	rep := runExp(t, "fig7")
	fig := rep.Figures[0]
	if len(fig.Series) != 4 {
		t.Fatalf("fig7 needs 4 flag combinations, got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for i, v := range s.Values {
			if v <= 1 {
				t.Errorf("%s %s: map/copy = %.2f, want > 1", s.Name, fig.Labels[i], v)
			}
		}
	}
	// Allocation flags must not change the ratio (paper: no effect on CPU).
	a, b := fig.Series[0].Values, fig.Series[3].Values
	for i := range a {
		if diff := a[i]/b[i] - 1; diff > 0.05 || diff < -0.05 {
			t.Errorf("allocation flags changed the ratio at %s: %.2f vs %.2f",
				fig.Labels[i], a[i], b[i])
		}
	}
	// The gap grows with workload size within an app (paper's observation).
	first := fig.Series[0].Values
	if first[3] <= first[0] {
		t.Errorf("map advantage should grow with Square size: %v", first[:4])
	}
}

// Figure 8: mapping transfer time below copying, both directions.
func TestFig8Shape(t *testing.T) {
	rep := runExp(t, "fig8")
	for _, fig := range rep.Figures {
		cp := series(t, fig, "Copying")
		mp := series(t, fig, "Mapping")
		for i := range cp {
			if mp[i] >= cp[i] {
				t.Errorf("%s %s: mapping (%.3f ms) not below copying (%.3f ms)",
					fig.Title, fig.Labels[i], mp[i], cp[i])
			}
		}
	}
}

// Figure 9: misaligned affinity costs roughly the paper's 15%.
func TestFig9Shape(t *testing.T) {
	rep := runExp(t, "fig9")
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("fig9 table rows = %d", len(tbl.Rows))
	}
	var norm float64
	if _, err := sscanFloat(tbl.Rows[1][2], &norm); err != nil {
		t.Fatalf("parse %q: %v", tbl.Rows[1][2], err)
	}
	if norm < 1.05 || norm > 1.35 {
		t.Errorf("misaligned/aligned = %.3f, want ~1.15 (paper: 15%%)", norm)
	}
}

// Figure 10: OpenCL outruns OpenMP on all eight benches.
func TestFig10Shape(t *testing.T) {
	rep := runExp(t, "fig10")
	fig := rep.Figures[0]
	omp := series(t, fig, "OpenMP")
	ocl := series(t, fig, "OpenCL")
	for i := range omp {
		if ocl[i] <= omp[i] {
			t.Errorf("%s: OpenCL %.2f <= OpenMP %.2f", fig.Labels[i], ocl[i], omp[i])
		}
	}
	// At least half the benches should show a >= 2x vectorization gap.
	big := 0
	for i := range omp {
		if ocl[i] >= 2*omp[i] {
			big++
		}
	}
	if big < 4 {
		t.Errorf("only %d/8 benches show a >= 2x gap", big)
	}
}

// Figure 11: the dependent chain vectorizes under OpenCL, not OpenMP.
func TestFig11Shape(t *testing.T) {
	rep := runExp(t, "fig11")
	tbl := rep.Tables[0]
	if tbl.Rows[0][1] != "true" {
		t.Error("OpenCL verdict must be vectorized")
	}
	if tbl.Rows[1][1] != "false" {
		t.Error("OpenMP verdict must be scalar")
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "__kernel") {
		t.Error("fig11 must dump the kernel source")
	}
}

func sscanFloat(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}

// Extension experiments must run and satisfy their own claims.
func TestExtAffinityShape(t *testing.T) {
	rep := runExp(t, "ext-affinity")
	var norm float64
	if _, err := sscanFloat(rep.Tables[0].Rows[1][2], &norm); err != nil {
		t.Fatal(err)
	}
	if norm <= 1.02 {
		t.Errorf("misaligned pinning should cost something: %.3f", norm)
	}
}

func TestExtHeteroShape(t *testing.T) {
	rep := runExp(t, "ext-hetero")
	for _, row := range rep.Tables[0].Rows {
		var speedup float64
		if _, err := sscanFloat(row[6], &speedup); err != nil {
			t.Fatalf("row %v: %v", row, err)
		}
		if speedup < 0.999 {
			t.Errorf("%s: co-execution (%0.3f) lost to a single device", row[0], speedup)
		}
	}
}

func TestExtScalingShape(t *testing.T) {
	rep := runExp(t, "ext-scaling")
	fig := rep.Figures[0]
	compute := series(t, fig, "Blackscholes")
	mem := series(t, fig, "Vectoradd")
	last := len(compute) - 1
	if compute[last] < 8 {
		t.Errorf("compute-bound kernel should scale: %v", compute)
	}
	if mem[last] > 4 {
		t.Errorf("bandwidth-bound kernel should hit the memory wall: %v", mem)
	}
}

func TestExtSIMDShape(t *testing.T) {
	rep := runExp(t, "ext-simd")
	rows := rep.Tables[0].Rows
	var vecGain, libmGain float64
	for _, row := range rows {
		var g float64
		if _, err := sscanFloat(row[3], &g); err != nil {
			t.Fatal(err)
		}
		if row[4] == "true" {
			vecGain = g
		} else {
			libmGain = g
		}
	}
	if vecGain < 1.8 {
		t.Errorf("vectorizable kernel AVX gain = %.2f, want ~2", vecGain)
	}
	if libmGain > 1.1 {
		t.Errorf("libm kernel should not gain from wider SIMD: %.2f", libmGain)
	}
}

func TestAblationRuns(t *testing.T) {
	rep := runExp(t, "ablation")
	if len(rep.Tables) != 4 {
		t.Fatalf("ablation tables = %d, want 4", len(rep.Tables))
	}
	// Ablation 4: the spill model decides the Matrixmul optimum.
	tbl := rep.Tables[3]
	if tbl.Rows[0][3] != "8x8" || tbl.Rows[1][3] != "16x16" {
		t.Errorf("barrier-spill ablation rows: %v / %v", tbl.Rows[0], tbl.Rows[1])
	}
}

func TestExtRooflineShape(t *testing.T) {
	rep := runExp(t, "ext-roofline")
	rows := rep.Tables[0].Rows
	if len(rows) < 12 {
		t.Fatalf("roofline rows = %d, want every app", len(rows))
	}
	limiters := map[string]bool{}
	for _, row := range rows {
		limiters[row[5]] = true
	}
	for _, want := range []string{"per-item overhead", "scalar execution", "compute"} {
		if !limiters[want] {
			t.Errorf("roofline should identify limiter %q somewhere", want)
		}
	}
}
