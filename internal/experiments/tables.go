package experiments

import (
	"fmt"

	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/parboil"
)

// Table1 reproduces Table I: the experimental environment, here the
// parameters of the simulated devices.
func Table1() harness.Experiment {
	return harness.Experiment{
		ID:    "table1",
		Title: "Experimental environment",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			c, g := tb.cpu.A, tb.gpu.A
			t := &harness.Table{Title: "Table I: Experimental environment (simulated)",
				Columns: []string{"Property", "Value"}}
			t.AddRow("CPUs", c.Name)
			t.AddRow("Sockets x cores x SMT", fmt.Sprintf("%d x %d x %d", c.Sockets, c.CoresPerSocket, c.SMTWays))
			t.AddRow("Vector width", fmt.Sprintf("%s, %d single precision FP", c.SIMDName, c.SIMDWidth))
			t.AddRow("Caches L1D/L2/L3", fmt.Sprintf("%v/%v/%v", c.L1D.Size, c.L2.Size, c.L3.Size))
			t.AddRow("FP peak performance", c.PeakFlops())
			t.AddRow("Core frequency", c.Clock)
			t.AddRow("GPUs", g.Name)
			t.AddRow("# SMs", g.SMs)
			t.AddRow("GPU FP peak performance", g.PeakFlops())
			t.AddRow("Shader clock frequency", g.Clock)
			t.AddRow("GPU shared memory per SM", g.SharedMemPerSM)
			t.AddRow("Platform", "clperf simulated Intel CPU + NVIDIA GPU OpenCL platforms")
			return &harness.Report{ID: "table1", Title: "Experimental environment",
				Tables: []*harness.Table{t}}, nil
		},
	}
}

// Table2 reproduces Table II: the simple applications and their launch
// characteristics.
func Table2() harness.Experiment {
	return harness.Experiment{
		ID:    "table2",
		Title: "Characteristics of the simple applications",
		Run: func(opts harness.Options) (*harness.Report, error) {
			t := &harness.Table{Title: "Table II: Characteristics of the Simple Applications",
				Columns: []string{"Benchmark", "Kernel", "global work size", "local work size"}}
			for _, app := range kernels.Registry() {
				for i, nd := range app.Configs {
					name, kname := "", ""
					if i == 0 {
						name, kname = app.Name, app.Kernel.Name
					}
					local := "NULL"
					if !nd.LocalNull() {
						local = sizeString(nd.Local, nd.Dims())
					}
					t.AddRow(name, kname, sizeString(nd.Global, nd.Dims()), local)
				}
			}
			return &harness.Report{ID: "table2", Title: "Simple application characteristics",
				Tables: []*harness.Table{t}}, nil
		},
	}
}

// Table3 reproduces Table III: the Parboil benchmarks.
func Table3() harness.Experiment {
	return harness.Experiment{
		ID:    "table3",
		Title: "Characteristics of the Parboil benchmarks",
		Run: func(opts harness.Options) (*harness.Report, error) {
			t := &harness.Table{Title: "Table III: Characteristics of the Parboil Benchmarks",
				Columns: []string{"Benchmark", "Kernel", "global work size", "local work size"}}
			prev := ""
			for _, e := range parboil.Entries() {
				name := ""
				if e.Bench != prev {
					name, prev = e.Bench, e.Bench
				}
				t.AddRow(name, e.Kernel.Name, sizeString(e.ND.Global, e.ND.Dims()),
					sizeString(e.ND.Local, e.ND.Dims()))
			}
			return &harness.Report{ID: "table3", Title: "Parboil characteristics",
				Tables: []*harness.Table{t}}, nil
		},
	}
}

// Table4 reproduces Table IV: the number of workitems at each coarsening
// factor of the Figure 1 experiment.
func Table4() harness.Experiment {
	return harness.Experiment{
		ID:    "table4",
		Title: "Number of workitems for each application (coarsening)",
		Run: func(opts harness.Options) (*harness.Report, error) {
			t := &harness.Table{Title: "Table IV: Number of Workitems for Each Application",
				Columns: []string{"Benchmark", "base", "10x", "100x", "1000x"}}
			add := func(name string, base int) {
				row := []any{name, base}
				for _, f := range []int{10, 100, 1000} {
					n := base / f
					if n < 1 {
						n = 1
					}
					row = append(row, n)
				}
				t.AddRow(row...)
			}
			for i, nd := range kernels.Square().Configs {
				add(fmt.Sprintf("Square %d", i+1), nd.Global[0])
			}
			for i, nd := range kernels.VectorAdd().Configs {
				add(fmt.Sprintf("VectorAdd %d", i+1), nd.Global[0])
			}
			return &harness.Report{ID: "table4", Title: "Coarsening workitem counts",
				Tables: []*harness.Table{t}}, nil
		},
	}
}

// Table5 reproduces Table V: the workgroup sizes swept in Figure 3.
func Table5() harness.Experiment {
	return harness.Experiment{
		ID:    "table5",
		Title: "Workgroup size for each application",
		Run: func(opts harness.Options) (*harness.Report, error) {
			t := &harness.Table{Title: "Table V: Workgroup Size for Each Application",
				Columns: []string{"Benchmark", "base", "case 1", "case 2", "case 3", "case 4"}}
			for _, sw := range wgSweeps() {
				row := []any{sw.app.Name, wgLabel(sw.base)}
				for _, c := range sw.cases {
					row = append(row, wgLabel(c))
				}
				t.AddRow(row...)
			}
			return &harness.Report{ID: "table5", Title: "Workgroup size sweep definition",
				Tables: []*harness.Table{t}}, nil
		},
	}
}

func sizeString(dims [3]int, n int) string {
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " X "
		}
		s += fmt.Sprint(dims[i])
	}
	return s
}

func wgLabel(local [3]int) string {
	if local == [3]int{} {
		return "NULL"
	}
	if local[1] <= 1 {
		return fmt.Sprint(local[0])
	}
	return fmt.Sprintf("%dX%d", local[0], local[1])
}

// wgSweep defines one row of Table V.
type wgSweep struct {
	app   *kernels.App
	base  [3]int
	cases [][3]int
}

// wgSweeps returns the Table V sweep definitions.
func wgSweeps() []wgSweep {
	one := func(vals ...int) [][3]int {
		out := make([][3]int, len(vals))
		for i, v := range vals {
			out[i] = [3]int{v, 1, 1}
		}
		return out
	}
	two := func(pairs ...[2]int) [][3]int {
		out := make([][3]int, len(pairs))
		for i, p := range pairs {
			out[i] = [3]int{p[0], p[1], 1}
		}
		return out
	}
	return []wgSweep{
		{app: kernels.Square(), base: [3]int{}, cases: one(1, 10, 100, 1000)},
		{app: kernels.VectorAdd(), base: [3]int{}, cases: one(1, 10, 100, 1000)},
		{app: kernels.MatrixMul(), base: [3]int{16, 16, 1},
			cases: two([2]int{1, 1}, [2]int{2, 2}, [2]int{4, 4}, [2]int{8, 8})},
		{app: kernels.BlackScholes(), base: [3]int{16, 16, 1},
			cases: two([2]int{1, 1}, [2]int{1, 2}, [2]int{2, 2}, [2]int{2, 4})},
		{app: kernels.MatrixMulNaive(), base: [3]int{16, 16, 1},
			cases: two([2]int{1, 1}, [2]int{2, 2}, [2]int{4, 4}, [2]int{8, 8})},
	}
}

// ndWithLocal returns nd with the given local size, shrinking dimensions so
// the local size always divides the global size.
func ndWithLocal(nd ir.NDRange, local [3]int) ir.NDRange {
	if local == [3]int{} {
		return nd.WithLocal(local)
	}
	for d := 0; d < 3; d++ {
		g := nd.Global[d]
		if g == 0 {
			g = 1
		}
		l := local[d]
		if l == 0 {
			l = 1
		}
		if l > g {
			l = g
		}
		for g%l != 0 {
			l--
		}
		local[d] = l
	}
	return nd.WithLocal(local)
}
