package experiments

import (
	"fmt"

	"clperf/internal/core"
	"clperf/internal/harness"
	"clperf/internal/kernels"
)

// ExtRoofline places every application on the CPU's roofline: operational
// intensity (flops per byte of traffic) against the attainable and
// achieved throughput. It summarizes in one table why each workload lands
// where it does in the paper's figures — overhead-bound kernels sit far
// below even the memory roof, libm-bound kernels far below the compute
// roof.
func ExtRoofline() harness.Experiment {
	return harness.Experiment{
		ID:    "ext-roofline",
		Title: "Roofline placement of every application (CPU)",
		Run: func(opts harness.Options) (*harness.Report, error) {
			ad := core.NewAdvisor(nil)
			if opts.NoPredict {
				ad.Pred = nil
			}
			ad.TopK = opts.TopK
			t := &harness.Table{
				Title: "Roofline (DRAM bandwidth x FP peak)",
				Columns: []string{"Benchmark", "flops/byte", "attainable GFlop/s",
					"achieved GFlop/s", "efficiency", "limiter"},
			}
			apps := append(kernels.Registry(), kernels.ExtraRegistry()...)
			for _, app := range apps {
				nd := app.DefaultConfig()
				args := app.Make(nd)
				rep, err := ad.Analyze(app.Kernel, args, nd)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", app.Name, err)
				}
				b := rep.Breakdown
				achieved := rep.Throughput.GFlops()
				eff := 0.0
				if b.AttainableGFlops > 0 {
					eff = achieved / b.AttainableGFlops
				}
				limiter := "compute"
				switch {
				case b.MemoryBound:
					limiter = "memory bandwidth"
				case !b.Vectorized:
					limiter = "scalar execution"
				case b.DispatchShare > 0.25:
					limiter = "workgroup dispatch"
				case b.OverheadShare > 0.4:
					limiter = "per-item overhead"
				}
				t.AddRow(app.Name, b.OperationalIntensity, b.AttainableGFlops,
					achieved, fmt.Sprintf("%.0f%%", 100*eff), limiter)
			}
			rep := &harness.Report{ID: "ext-roofline",
				Title:  "Roofline placement",
				Tables: []*harness.Table{t}}
			rep.AddNote("efficiency below 100%% is the runtime gap the paper's guidelines target")
			rep.AddNote("kernels with L3-resident working sets may exceed the DRAM roof (e.g. MatrixmulNaive)")
			return rep, nil
		},
	}
}
