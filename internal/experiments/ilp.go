package experiments

import (
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/microbench"
)

// ILPItems is the launch size of the Figure 6 microbenchmarks: enough
// workitems to saturate both devices' thread-level parallelism, as the
// paper specifies.
const ILPItems = 1 << 18

// Fig6 reproduces Figure 6: throughput of the ILP microbenchmarks on the
// CPU (rising until the dependence latency is covered) and the GPU (flat —
// warps already hide the latency).
func Fig6() harness.Experiment {
	return harness.Experiment{
		ID:    "fig6",
		Title: "ILP microbenchmark, CPU vs GPU",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			fig := &harness.Figure{
				Title:  "Figure 6",
				XLabel: "ILP",
				YLabel: "throughput (GFlop/s)",
				Labels: []string{"1", "2", "3", "4", "5"},
			}
			var cpuVals, gpuVals []float64
			for chains := 1; chains <= 5; chains++ {
				k := microbench.ILPKernel(chains)
				args := microbench.MakeILPArgs(ILPItems)
				nd := ir.Range1D(ILPItems, 256)
				flops := microbench.ILPFlopsPerItem(chains) * ILPItems

				cres, err := tb.cpuEstimate(k, args, nd)
				if err != nil {
					return nil, err
				}
				gres, err := tb.gpuEstimate(k, args, nd)
				if err != nil {
					return nil, err
				}
				cpuVals = append(cpuVals, flops/cres.Time.Seconds()/1e9)
				gpuVals = append(gpuVals, flops/gres.Time.Seconds()/1e9)
			}
			fig.Add("CPU", cpuVals)
			fig.Add("GPU", gpuVals)

			rep := &harness.Report{ID: "fig6",
				Title:   "Performance of ILP microbenchmark",
				Figures: []*harness.Figure{fig}}
			rep.AddNote("CPU GFlop/s 1->4 chains: %.3gx; 4->5: %.3gx (saturation)",
				cpuVals[3]/cpuVals[0], cpuVals[4]/cpuVals[3])
			rep.AddNote("GPU GFlop/s 1->5 chains: %.3gx (flat: TLP hides latency)",
				gpuVals[4]/gpuVals[0])
			return rep, nil
		},
	}
}
