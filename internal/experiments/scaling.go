package experiments

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
)

// ExtScaling sweeps the core count for a set of applications — the scaling
// study the paper's related work (Ali et al.) performs, here over the
// model: compute-bound kernels scale nearly linearly until SMT, while
// bandwidth-bound kernels flatten at the memory wall.
func ExtScaling() harness.Experiment {
	return harness.Experiment{
		ID:    "ext-scaling",
		Title: "Core-count scaling of the Table II applications",
		Run: func(opts harness.Options) (*harness.Report, error) {
			coreCounts := []int{1, 2, 4, 6, 8, 12} // physical cores per socket x sockets
			fig := &harness.Figure{
				Title:  "Speedup vs. physical cores (SMT on, normalized to 1 core)",
				XLabel: "physical cores",
				YLabel: "speedup",
			}
			for _, c := range coreCounts {
				fig.Labels = append(fig.Labels, fmt.Sprint(c))
			}

			type probe struct {
				name string
				k    func() (*ir.Kernel, *ir.Args, ir.NDRange, error)
			}
			fromApp := func(app *kernels.App, cfg int) func() (*ir.Kernel, *ir.Args, ir.NDRange, error) {
				return func() (*ir.Kernel, *ir.Args, ir.NDRange, error) {
					nd := app.Configs[cfg]
					return app.Kernel, app.Make(nd), nd, nil
				}
			}
			probes := []probe{
				{"Blackscholes (compute-bound)", fromApp(kernels.BlackScholes(), 0)},
				{"Square (overhead-bound)", fromApp(kernels.Square(), 2)},
				// Coarsened large vectoradd streams DRAM: the memory wall.
				{"Vectoradd x100 (bandwidth-bound)", func() (*ir.Kernel, *ir.Args, ir.NDRange, error) {
					app := kernels.VectorAdd()
					nd := app.Configs[3]
					args := app.Make(nd)
					ck, err := kernels.Coarsen(app.Kernel, 100)
					if err != nil {
						return nil, nil, nd, err
					}
					cnd, err := kernels.CoarsenRange(nd, 100)
					return ck, args, cnd, err
				}},
			}
			for _, pb := range probes {
				k, args, nd, err := pb.k()
				if err != nil {
					return nil, err
				}
				var base float64
				var vals []float64
				for i, cores := range coreCounts {
					a := arch.XeonE5645()
					// Scale the socket topology while keeping per-core
					// resources fixed; memory bandwidth stays the machine's.
					a.Sockets = 1
					a.CoresPerSocket = cores
					d := cpu.New(a)
					res, err := d.Estimate(k, args, nd)
					if err != nil {
						return nil, fmt.Errorf("%s @%d cores: %w", pb.name, cores, err)
					}
					thr := 1 / res.Time.Seconds()
					if i == 0 {
						base = thr
					}
					vals = append(vals, thr/base)
				}
				fig.Add(pb.name, vals)
			}
			rep := &harness.Report{ID: "ext-scaling",
				Title:   "Core-count scaling",
				Figures: []*harness.Figure{fig}}
			rep.AddNote("compute-bound kernels scale with cores; bandwidth-bound kernels hit the shared memory wall")
			return rep, nil
		},
	}
}
