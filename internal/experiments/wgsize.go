package experiments

import (
	"fmt"

	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/parboil"
	"clperf/internal/units"
)

// wgPoint prices one app at one workgroup size on one device.
func (tb *testbed) wgPoint(app *kernels.App, nd ir.NDRange, args *ir.Args, dev string) (units.Duration, error) {
	if dev == "CPU" {
		return tb.cpuTime(app.Kernel, args, nd)
	}
	return tb.gpuTime(app.Kernel, args, nd)
}

// Fig3 reproduces Figure 3: performance of the Table V applications with
// different workgroup sizes on CPU and GPU, normalized to the base size.
func Fig3() harness.Experiment {
	return harness.Experiment{
		ID:    "fig3",
		Title: "Workgroup size sweep on CPUs and GPUs",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			rep := &harness.Report{ID: "fig3", Title: "Performance with different workgroup size"}
			caseNames := []string{"base", "case_1", "case_2", "case_3", "case_4"}

			for _, dev := range []string{"CPU", "GPU"} {
				fig := &harness.Figure{
					Title:  fmt.Sprintf("Figure 3 (%s)", dev),
					XLabel: "benchmark",
					YLabel: "normalized throughput",
				}
				series := make([][]float64, len(caseNames))
				for _, sw := range wgSweeps() {
					// The paper plots the first two configurations per app.
					configs := sw.app.Configs
					if len(configs) > 2 {
						configs = configs[:2]
					}
					for ci, nd := range configs {
						fig.Labels = append(fig.Labels, fmt.Sprintf("%s_%d", sw.app.Name, ci+1))
						args := sw.app.Make(nd)
						sizes := append([][3]int{sw.base}, sw.cases...)
						var base float64
						for si, local := range sizes {
							snd := ndWithLocal(nd, local)
							t, err := tb.wgPoint(sw.app, snd, args, dev)
							if err != nil {
								return nil, fmt.Errorf("%s %s case %d: %w", sw.app.Name, dev, si, err)
							}
							thr := 1 / t.Seconds()
							if si == 0 {
								base = thr
							}
							series[si] = append(series[si], thr/base)
						}
					}
				}
				for si, name := range caseNames {
					fig.Add(fmt.Sprintf("%s(%s)", name, dev), series[si])
				}
				rep.Figures = append(rep.Figures, fig)
			}
			return rep, nil
		},
	}
}

// Fig4 reproduces Figure 4: Blackscholes alone across workgroup sizes —
// flat on the CPU, strongly occupancy-dependent on the GPU.
func Fig4() harness.Experiment {
	return harness.Experiment{
		ID:    "fig4",
		Title: "Blackscholes workgroup size sensitivity",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			app := kernels.BlackScholes()
			sizes := [][3]int{{}, {1, 1, 1}, {1, 2, 1}, {2, 2, 1}, {2, 4, 1}, {16, 16, 1}}
			names := []string{"base(16X16)", "1X1", "1X2", "2X2", "2X4", "16X16"}
			rep := &harness.Report{ID: "fig4", Title: "Blackscholes with different workgroup size"}

			for _, dev := range []string{"CPU", "GPU"} {
				fig := &harness.Figure{
					Title:  fmt.Sprintf("Figure 4 (%s)", dev),
					XLabel: "input",
					YLabel: "normalized throughput",
				}
				series := make([][]float64, len(sizes))
				for ci, nd := range app.Configs {
					fig.Labels = append(fig.Labels, fmt.Sprintf("blackscholes_%d", ci+1))
					args := app.Make(nd)
					var base float64
					for si, local := range sizes {
						snd := nd
						if si == 0 {
							snd = ndWithLocal(nd, [3]int{16, 16, 1})
						} else {
							snd = ndWithLocal(nd, local)
						}
						t, err := tb.wgPoint(app, snd, args, dev)
						if err != nil {
							return nil, err
						}
						thr := 1 / t.Seconds()
						if si == 0 {
							base = thr
						}
						series[si] = append(series[si], thr/base)
					}
				}
				for si, name := range names {
					fig.Add(fmt.Sprintf("%s(%s)", name, dev), series[si])
				}
				rep.Figures = append(rep.Figures, fig)
			}
			return rep, nil
		},
	}
}

// Fig5 reproduces Figure 5: Parboil kernels on the CPU with workgroup
// sizes scaled x1..x16, cenergy swept along both dimensions.
func Fig5() harness.Experiment {
	return harness.Experiment{
		ID:    "fig5",
		Title: "Parboil workgroup size sweep on CPU",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			fig := &harness.Figure{
				Title:  "Figure 5",
				XLabel: "workgroup scale",
				YLabel: "normalized throughput",
				Labels: []string{"1", "2", "4", "8", "16"},
			}
			scales := []int{1, 2, 4, 8, 16}

			type sweep struct {
				name  string
				entry parboil.Entry
				local func(scale int) [3]int
			}
			entries := parboil.Entries()
			byName := func(n string) parboil.Entry {
				for _, e := range entries {
					if e.Kernel.Name == n {
						return e
					}
				}
				panic("missing parboil kernel " + n)
			}
			ce := byName("cenergy")
			sweeps := []sweep{
				{name: "CP: cenergy(X)", entry: ce,
					local: func(s int) [3]int { return [3]int{s, 8, 1} }},
				{name: "CP: cenergy(Y)", entry: ce,
					local: func(s int) [3]int { return [3]int{16, s, 1} }},
				{name: "MRI-Q: computePhiMag", entry: byName("computePhiMag"),
					local: func(s int) [3]int { return [3]int{512 * s / 16, 1, 1} }},
				{name: "MRI-Q: computeQ", entry: byName("computeQ"),
					local: func(s int) [3]int { return [3]int{256 * s / 16, 1, 1} }},
				{name: "MRI-FHD: RhoPhi", entry: byName("RhoPhi"),
					local: func(s int) [3]int { return [3]int{512 * s / 16, 1, 1} }},
				{name: "MRI-FHD: computeQ", entry: byName("FH"),
					local: func(s int) [3]int { return [3]int{256 * s / 16, 1, 1} }},
			}
			for _, sw := range sweeps {
				args := sw.entry.Make()
				var vals []float64
				var base float64
				for si, s := range scales {
					nd := ndWithLocal(sw.entry.ND, sw.local(s))
					t, err := tb.cpuTime(sw.entry.Kernel, args, nd)
					if err != nil {
						return nil, fmt.Errorf("%s scale %d: %w", sw.name, s, err)
					}
					thr := 1 / t.Seconds()
					if si == 0 {
						base = thr
					}
					vals = append(vals, thr/base)
				}
				fig.Add(sw.name, vals)
			}
			return &harness.Report{ID: "fig5",
				Title:   "Parboil performance with different workgroup size on CPUs",
				Figures: []*harness.Figure{fig}}, nil
		},
	}
}
