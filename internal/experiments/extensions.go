package experiments

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/cl"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/hetero"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
)

// ExtAffinity demonstrates the paper's section III-E proposal implemented
// as the clperf_workgroup_affinity extension: two dependent kernels
// launched with aligned vs. misaligned workgroup->core mappings, inside
// the OpenCL API rather than via OpenMP.
func ExtAffinity() harness.Experiment {
	return harness.Experiment{
		ID:    "ext-affinity",
		Title: "OpenCL workgroup-affinity extension (the paper's proposed improvement)",
		Run: func(opts harness.Options) (*harness.Report, error) {
			scale := &ir.Kernel{
				Name:    "scale",
				WorkDim: 1,
				Params:  []ir.Param{ir.Buf("in"), ir.Buf("out")},
				Body: []ir.Stmt{
					ir.StoreF("out", ir.Gid(0),
						ir.Mul(ir.LoadF("in", ir.Gid(0)), ir.F(2))),
				},
			}
			const (
				cores = 8
				local = 2048
				n     = cores * local
			)
			run := func(shift int) (float64, error) {
				ctx := cl.NewContext(cl.CPUDevice())
				q := cl.NewQueue(ctx)
				a, err := ctx.CreateBuffer(cl.MemReadWrite, ir.F32, n)
				if err != nil {
					return 0, err
				}
				b, err := ctx.CreateBuffer(cl.MemReadWrite, ir.F32, n)
				if err != nil {
					return 0, err
				}
				c, err := ctx.CreateBuffer(cl.MemReadWrite, ir.F32, n)
				if err != nil {
					return 0, err
				}
				k1, err := ctx.CreateKernel(scale)
				if err != nil {
					return 0, err
				}
				if err := k1.SetBufferArg("in", a); err != nil {
					return 0, err
				}
				if err := k1.SetBufferArg("out", b); err != nil {
					return 0, err
				}
				if _, err := q.EnqueueNDRangeKernelPinned(k1, ir.Range1D(n, local),
					func(g int) int { return g }); err != nil {
					return 0, err
				}
				k2, err := ctx.CreateKernel(scale)
				if err != nil {
					return 0, err
				}
				if err := k2.SetBufferArg("in", b); err != nil {
					return 0, err
				}
				if err := k2.SetBufferArg("out", c); err != nil {
					return 0, err
				}
				ke, err := q.EnqueueNDRangeKernelPinned(k2, ir.Range1D(n, local),
					func(g int) int { return (g + shift) % cores })
				if err != nil {
					return 0, err
				}
				return float64(ke.Time()), nil
			}
			aligned, err := run(0)
			if err != nil {
				return nil, err
			}
			misaligned, err := run(1)
			if err != nil {
				return nil, err
			}
			t := &harness.Table{
				Title:   "Pinned consumer launch (clperf_workgroup_affinity)",
				Columns: []string{"Mapping", "time (us)", "normalized"},
			}
			t.AddRow("aligned with producer", aligned/1e3, 1.0)
			t.AddRow("misaligned (+1 core)", misaligned/1e3, misaligned/aligned)
			rep := &harness.Report{ID: "ext-affinity",
				Title:  "Workgroup affinity extension",
				Tables: []*harness.Table{t}}
			rep.AddNote("pinning the consumer like the producer is %.1f%% faster — the gain the paper predicted OpenCL could unlock",
				100*(misaligned/aligned-1))
			return rep, nil
		},
	}
}

// ExtHetero demonstrates CPU+GPU co-execution: the static partitioner's
// best split per application versus single-device execution.
func ExtHetero() harness.Experiment {
	return harness.Experiment{
		ID:    "ext-hetero",
		Title: "CPU+GPU co-execution via static partitioning",
		Run: func(opts harness.Options) (*harness.Report, error) {
			p := hetero.NewPartitioner(cpu.New(arch.XeonE5645()), gpu.New(arch.GTX580()))
			// The partitioner's devices are private (no recorder), so its
			// parallel evaluators are free to run out of order; only the
			// deterministic search spans and cache counters land on the
			// experiment's recorder.
			rec := func() *obs.Recorder { return opts.Obs }
			p.CPUEval.Rec, p.GPUEval.Rec = rec, rec
			if opts.NoCache {
				p.CPUEval.Cache, p.GPUEval.Cache = nil, nil
			}
			if opts.NoPredict {
				p.Pred = nil
			}
			p.TopK = opts.TopK
			t := &harness.Table{
				Title: "Best CPU/GPU split per application (first configuration)",
				Columns: []string{"Benchmark", "CPU share", "CPU time", "GPU time",
					"co-exec time", "best single device", "speedup"},
			}
			apps := []*kernels.App{
				kernels.Square(), kernels.VectorAdd(), kernels.MatrixMulNaive(),
				kernels.BlackScholes(),
			}
			for _, app := range apps {
				nd := app.Configs[0]
				args := app.Make(nd)
				best, err := p.Partition(app.Kernel, args, nd)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", app.Name, err)
				}
				// Single-device baselines are the endpoint splits, so the
				// GPU-only number carries its full PCIe transfer like every
				// other split.
				cpuOnly, err := p.PriceFrac(app.Kernel, args, nd, 1, 1)
				if err != nil {
					return nil, err
				}
				gpuOnly, err := p.PriceFrac(app.Kernel, args, nd, 0, 1)
				if err != nil {
					return nil, err
				}
				single := cpuOnly.Time
				if gpuOnly.Time < single {
					single = gpuOnly.Time
				}
				t.AddRow(app.Name,
					fmt.Sprintf("%.0f%%", 100*best.CPUFrac),
					best.CPUTime, best.GPUTime, best.Time, single,
					float64(single)/float64(best.Time))
			}
			rep := &harness.Report{ID: "ext-hetero",
				Title:  "Heterogeneous co-execution",
				Tables: []*harness.Table{t}}
			rep.AddNote("the partitioner never loses to the best single device; PCIe traffic is charged to the GPU share")
			return rep, nil
		},
	}
}
