package experiments

import (
	"clperf/internal/arch"
	"clperf/internal/cpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/units"
)

// Ablation quantifies what each component of the CPU timing model
// contributes, by disabling one mechanism at a time and re-running a
// probe workload. The table documents why each DESIGN.md modeling choice
// exists: remove it and the corresponding paper result disappears.
func Ablation() harness.Experiment {
	return harness.Experiment{
		ID:    "ablation",
		Title: "CPU model ablations: which mechanism produces which paper result",
		Run: func(opts harness.Options) (*harness.Report, error) {
			rep := &harness.Report{ID: "ablation", Title: "Model ablations"}

			probe := func(d *cpu.Device, k *ir.Kernel, args *ir.Args, nd ir.NDRange) units.Duration {
				res, err := d.Estimate(k, args, nd)
				if err != nil {
					return 0
				}
				return res.Time
			}

			// 1. Implicit vectorization: its removal slows vectorizable
			// kernels ~SIMDWidth-fold (the Figure 10 mechanism).
			{
				app := kernels.Square()
				nd := ir.Range1D(1<<20, 256)
				args := app.Make(nd)
				on := cpu.New(arch.XeonE5645())
				off := cpu.New(arch.XeonE5645())
				off.ForceScalar = true
				t := &harness.Table{
					Title:   "Ablation 1: implicit vectorization (square, 1M items)",
					Columns: []string{"Model", "time", "relative"},
				}
				tOn, tOff := probe(on, app.Kernel, args, nd), probe(off, app.Kernel, args, nd)
				t.AddRow("vectorizer on (default)", tOn, 1.0)
				t.AddRow("vectorizer off", tOff, float64(tOff)/float64(tOn))
				rep.Tables = append(rep.Tables, t)
			}

			// 2. Per-workgroup dispatch cost: its removal erases the paper's
			// workgroup-size effect (Figure 3's case_1 collapse).
			{
				app := kernels.Square()
				args := app.Make(ir.Range1D(1<<20, 1))
				mk := func(scale float64) *cpu.Device {
					a := arch.XeonE5645()
					a.GroupDispatch = units.Duration(float64(a.GroupDispatch) * scale)
					return cpu.New(a)
				}
				t := &harness.Table{
					Title:   "Ablation 2: workgroup dispatch cost (square, 1M items, WG=1 vs WG=1024)",
					Columns: []string{"Dispatch scale", "WG=1", "WG=1024", "penalty"},
				}
				for _, scale := range []float64{0, 1, 10} {
					d := mk(scale)
					t1 := probe(d, app.Kernel, args, ir.Range1D(1<<20, 1))
					t1024 := probe(d, app.Kernel, args, ir.Range1D(1<<20, 1024))
					t.AddRow(scale, t1, t1024, float64(t1)/float64(t1024))
				}
				rep.Tables = append(rep.Tables, t)
				rep.AddNote("without dispatch cost (scale 0) the residual WG=1 penalty is the lost SIMD width only")
			}

			// 3. SMT yield: hyperthread contention trims throughput once all
			// 24 hardware threads are busy.
			{
				app := kernels.BlackScholes()
				nd := app.Configs[0]
				args := app.Make(nd)
				t := &harness.Table{
					Title:   "Ablation 3: SMT issue sharing (blackscholes 1280^2)",
					Columns: []string{"SMT yield per sibling", "time", "relative"},
				}
				var base units.Duration
				for _, yield := range []float64{0.5, 0.62, 1.0} {
					a := arch.XeonE5645()
					a.SMTYield = yield
					d := cpu.New(a)
					tt := probe(d, app.Kernel, args, nd)
					if yield == 0.62 {
						base = tt
					}
					t.AddRow(yield, tt, 0.0)
				}
				// Fill relatives once the default is known.
				for i, yield := range []float64{0.5, 0.62, 1.0} {
					a := arch.XeonE5645()
					a.SMTYield = yield
					d := cpu.New(a)
					tt := probe(d, app.Kernel, args, nd)
					t.Rows[i][2] = harnessCell(float64(tt) / float64(base))
				}
				rep.Tables = append(rep.Tables, t)
			}

			// 4. Barrier-state spill: without it the CPU's Matrixmul optimum
			// moves back to the GPU's 16x16 (the Figure 3 category-2 result
			// depends on this mechanism).
			{
				app := kernels.MatrixMul()
				nd := app.Configs[0]
				args := app.Make(nd)
				t := &harness.Table{
					Title:   "Ablation 4: barrier state spill (matrixmul 800x1600)",
					Columns: []string{"Model", "8x8", "16x16", "CPU optimum"},
				}
				row := func(name string, a *arch.CPU) {
					d := cpu.New(a)
					t8 := probe(d, app.Kernel, args, nd.WithLocal([3]int{8, 8, 1}))
					t16 := probe(d, app.Kernel, args, nd.WithLocal([3]int{16, 16, 1}))
					best := "8x8"
					if t16 < t8 {
						best = "16x16"
					}
					t.AddRow(name, t8, t16, best)
				}
				row("spill model on (default)", arch.XeonE5645())
				off := arch.XeonE5645()
				off.BarrierContext = 0
				off.BarrierItemCost = 0
				row("spill model off", off)
				rep.Tables = append(rep.Tables, t)
				rep.AddNote("the 8x8-beats-16x16 CPU result exists because barrier state spills past L1 at 256-item groups")
			}

			return rep, nil
		},
	}
}

// harnessCell formats a float the way harness.Table does.
func harnessCell(v float64) string {
	t := &harness.Table{}
	t.AddRow(v)
	return t.Rows[0][0]
}
