package experiments

import (
	"fmt"
	"strings"

	"clperf/internal/arch"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/microbench"
	"clperf/internal/omp"
)

// Fig10 reproduces Figure 10: throughput of the MBench1-8 computations as
// OpenCL kernels versus their OpenMP ports. The gap is the programming
// models' vectorization difference: the OpenCL compiler packs workitems
// into SIMD lanes without dependence checks, while the loop vectorizer must
// prove legality and gives up on every MBench.
func Fig10() harness.Experiment {
	return harness.Experiment{
		ID:    "fig10",
		Title: "OpenMP vs OpenCL throughput (vectorization)",
		Run: func(opts harness.Options) (*harness.Report, error) {
			tb := newTestbed(opts)
			rt := omp.New(arch.XeonE5645())
			fig := &harness.Figure{
				Title:  "Figure 10",
				XLabel: "benchmark",
				YLabel: "throughput (GFlop/s)",
			}
			var ompVals, oclVals []float64
			detail := &harness.Table{Title: "Vectorization verdicts",
				Columns: []string{"Benchmark", "OpenCL vectorized", "OpenMP vectorized", "OpenMP reason"}}
			for _, mb := range microbench.MBenches() {
				fig.Labels = append(fig.Labels, mb.Name)
				nd := ir.Range1D(mb.Items, mb.Local)
				args := mb.Make()
				flops := mb.FlopsPerItem * float64(mb.Items)

				cres, err := tb.cpuEstimate(mb.Kernel, args, nd)
				if err != nil {
					return nil, fmt.Errorf("%s OpenCL: %w", mb.Name, err)
				}
				oclVals = append(oclVals, flops/cres.Time.Seconds()/1e9)

				// Price the OpenMP port without functional re-execution
				// (identical results; see the microbench tests for checks).
				fres, err := priceOpenMP(rt, mb, args, nd)
				if err != nil {
					return nil, fmt.Errorf("%s OpenMP: %w", mb.Name, err)
				}
				ompVals = append(ompVals, flops/fres.Time.Seconds()/1e9)
				detail.AddRow(mb.Name,
					fmt.Sprint(cres.Cost.Vec.Vectorized),
					fmt.Sprint(fres.Vec.Vectorized),
					fres.Vec.Reason)
			}
			fig.Add("OpenMP", ompVals)
			fig.Add("OpenCL", oclVals)
			rep := &harness.Report{ID: "fig10",
				Title:   "Performance impact of vectorization",
				Figures: []*harness.Figure{fig},
				Tables:  []*harness.Table{detail}}
			worst := 1e18
			for i := range ompVals {
				if r := oclVals[i] / ompVals[i]; r < worst {
					worst = r
				}
			}
			rep.AddNote("OpenCL outperforms OpenMP on every MBench; minimum ratio %.3g", worst)
			return rep, nil
		},
	}
}

// priceOpenMP prices an MBench's OpenMP port (no functional execution).
func priceOpenMP(rt *omp.Runtime, mb *microbench.MBench, args *ir.Args, nd ir.NDRange) (*omp.ForResult, error) {
	return rt.EstimateFor(mb.Kernel, args, nd.GlobalItems())
}

// Fig11 reproduces Figure 11: the kernel that the OpenCL compiler
// vectorizes but the OpenMP loop vectorizer rejects, with both verdicts.
func Fig11() harness.Experiment {
	return harness.Experiment{
		ID:    "fig11",
		Title: "Vectorization on OpenCL vs OpenMP (the dependent-chain loop)",
		Run: func(opts harness.Options) (*harness.Report, error) {
			mb := microbench.MBenches()[1] // MBench2: six dependent FMULs
			nd := ir.Range1D(mb.Items, mb.Local)
			args := mb.Make()

			clRep, err := ir.VectorizeOpenCL(mb.Kernel, args, nd)
			if err != nil {
				return nil, err
			}
			const induction = "j"
			body := ir.SubstGlobalID(mb.Kernel.Body, 0, ir.Vi(induction))
			env := ir.NewStaticEnv(nd, args)
			loopRep := ir.VectorizeLoop(body, induction, env, args.Scalars)

			t := &harness.Table{Title: "Figure 11: vectorization verdicts for the dependent FMUL chain",
				Columns: []string{"Compiler", "Vectorized", "Why"}}
			t.AddRow("OpenCL kernel compiler (across workitems)",
				fmt.Sprint(clRep.Vectorized),
				"workitems are independent; no dependence checks required")
			t.AddRow("OpenMP loop vectorizer (across iterations)",
				fmt.Sprint(loopRep.Vectorized), loopRep.Reason)

			rep := &harness.Report{ID: "fig11",
				Title:  "Vectorization on OpenCL vs. OpenMP",
				Tables: []*harness.Table{t}}
			src := ir.Format(mb.Kernel)
			rep.AddNote("kernel source:\n%s", strings.TrimRight(src, "\n"))
			return rep, nil
		},
	}
}
