package experiments

import (
	"fmt"

	"clperf/internal/arch"
	"clperf/internal/core"
	"clperf/internal/cpu"
	"clperf/internal/gpu"
	"clperf/internal/harness"
	"clperf/internal/ir"
	"clperf/internal/kernels"
	"clperf/internal/obs"
	"clperf/internal/replay"
	"clperf/internal/search"
)

// The portability matrix: every matrix kernel priced on every device of
// the extended CPU zoo (arch.MatrixZoo), through the trace-once /
// replay-many pipeline (internal/replay). The experiment is standalone —
// `oclbench -e matrix` — and deliberately not part of All(): results.txt
// is the checked-in render of the full suite and must not change as the
// matrix grows.

// matrixEntry is one row of the grid: an application and the reference
// geometry its cells are priced at. The geometry has an explicit local
// size (replay capture requires it: devices resolve NULL locals
// differently) and is small enough that the full grid stays interactive.
type matrixEntry struct {
	app *kernels.App
	nd  ir.NDRange
}

// matrixEntries returns the grid's kernel axis. Every member is
// idempotent (pure out = f(in)), because the -noreplay baseline
// re-executes each kernel once per device on the same buffers;
// Histogram's atomic accumulation is excluded for exactly that reason.
// Every member also performs counted flops (the portability score is a
// flop-efficiency measure), which excludes the pure-copy Transpose.
func matrixEntries() []matrixEntry {
	return []matrixEntry{
		{kernels.Square(), ir.Range1D(1 << 18, 256)},
		{kernels.VectorAdd(), ir.Range1D(1 << 18, 256)},
		{kernels.MatrixMul(), ir.Range2D(160, 320, 16, 16)},
		{kernels.MatrixMulNaive(), ir.Range2D(160, 320, 16, 16)},
		{kernels.BlackScholes(), ir.Range2D(640, 640, 16, 16)},
		{kernels.Convolution(), ir.Range2D(1024, 256, 64, 1)},
		{kernels.Stencil5(), ir.Range2D(512, 512, 16, 16)},
		{kernels.Stencil9(), ir.Range2D(512, 512, 16, 16)},
	}
}

// matrixLabels returns short column labels for arch.MatrixZoo, in zoo
// order (full device names would blow the table width).
func matrixLabels(archs []*arch.CPU) []string {
	short := []string{"Xeon", "SNB", "wide", "narrow", "avx2", "many", "bigL3", "embed"}
	out := make([]string, len(archs))
	for i, a := range archs {
		if i < len(short) {
			out[i] = short[i]
		} else {
			out[i] = a.Name
		}
	}
	return out
}

// harmonicEff reduces a row of per-device architectural efficiencies
// (achieved / peak GFlop/s per device) to one portability score: their
// harmonic mean. Normalizing by each device's own peak removes the zoo's
// raw capability spread (wide server vs embedded part is ~100x), so the
// score measures how uniformly the kernel exploits whatever hardware it
// lands on — the Pennycook-style efficiency mean. The harmonic mean
// punishes a single pathological device harder than the arithmetic mean,
// matching how a portability failure is experienced.
func harmonicEff(eff []float64) float64 {
	sum := 0.0
	for _, v := range eff {
		if v <= 0 {
			return 0
		}
		sum += 1 / v
	}
	if sum == 0 {
		return 0
	}
	return float64(len(eff)) / sum
}

// Matrix returns the kernels x devices portability-matrix experiment.
func Matrix() harness.Experiment {
	return harness.Experiment{
		ID:    "matrix",
		Title: "Performance portability matrix over the extended CPU zoo",
		Run: func(opts harness.Options) (*harness.Report, error) {
			entries := matrixEntries()
			archs := arch.MatrixZoo()
			if n := opts.MatrixN; n > 0 {
				if n < len(entries) {
					entries = entries[:n]
				}
				if n < len(archs) {
					archs = archs[:n]
				}
			}
			labels := matrixLabels(archs)

			rec := func() *obs.Recorder { return opts.Obs }
			var replayCache *search.Cache
			if !opts.NoCache {
				replayCache = search.NewCache(0)
			}
			ads := make([]*core.Advisor, len(archs))
			devs := make([]*cpu.Device, len(archs))
			for j, a := range archs {
				ad := core.NewAdvisor(a)
				ad.Dev.Obs = opts.Obs
				if opts.NoPredict {
					ad.Pred = nil
				}
				ad.TopK = opts.TopK
				// Serial evaluation: the devices record onto the shared
				// recorder, whose stream must not depend on goroutine
				// interleaving.
				ad.Eval.Workers = 1
				if opts.NoCache {
					ad.Eval.Cache = nil
				}
				ads[j] = ad
				devs[j] = ad.Dev
			}
			gpuDev := gpu.New(arch.GTX580())
			gpuDev.Obs = opts.Obs

			tuned := &harness.Table{
				Title:   "Tuned throughput (GFlop/s, best workgroup per device)",
				Columns: append(append([]string{"Benchmark"}, labels...), "portability"),
			}
			times := &harness.Table{
				Title:   "Replayed runtime at the reference geometry",
				Columns: append(append([]string{"Benchmark"}, labels...), "GTX580 (est)"),
			}

			for _, e := range entries {
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					return nil, opts.Ctx.Err()
				}
				k := e.app.Kernel
				args := e.app.Make(e.nd)

				// Tuned row: per-device best workgroup through the static
				// model (search-memoized, predictor-pruned unless
				// -nopredict). GFlop/s compare across devices because the
				// application flop count is geometry-determined.
				eff := make([]float64, len(ads))
				row := []any{e.app.Name}
				for j, ad := range ads {
					best, _, err := ad.BestWorkgroup(k, args, e.nd)
					if err != nil {
						return nil, fmt.Errorf("matrix: tune %s on %s: %w", e.app.Name, archs[j].Name, err)
					}
					res, err := ad.Eval.Estimate(k, args, best)
					if err != nil {
						return nil, fmt.Errorf("matrix: estimate %s on %s: %w", e.app.Name, archs[j].Name, err)
					}
					gf := res.Throughput().GFlops()
					eff[j] = gf / archs[j].PeakFlops().GFlops()
					row = append(row, gf)
				}
				tuned.AddRow(append(row, harmonicEff(eff))...)

				// Runtime row: one traced execution replayed on every
				// device's cache simulator (or M naive executions under
				// -noreplay — bitwise the same cells).
				results, tr, err := replay.PinnedAll(devs, k, args, e.nd, replay.Options{
					NoReplay: opts.NoReplay,
					Cache:    replayCache,
					Rec:      rec,
				})
				if err != nil {
					return nil, fmt.Errorf("matrix: %s: %w", e.app.Name, err)
				}
				if opts.Functional {
					if err := e.app.Check(args, e.nd); err != nil {
						return nil, fmt.Errorf("matrix: %s failed validation: %w", e.app.Name, err)
					}
				}
				row = []any{e.app.Name}
				for _, r := range results {
					row = append(row, r.Time)
				}
				// GPU column: the same trace priced on the GTX 580's static
				// model (estimate-only — no CPU cache simulation applies).
				// Excluded from the portability score, which ranks CPU
				// devices only.
				var g *gpu.Result
				if tr != nil {
					g, err = replay.EstimateOn(tr, gpuDev.Fingerprint(), gpuDev.Estimate, replayCache, rec)
				} else {
					g, err = gpuDev.Estimate(k, args, e.nd)
				}
				if err != nil {
					return nil, fmt.Errorf("matrix: %s on GTX580: %w", e.app.Name, err)
				}
				times.AddRow(append(row, g.Time)...)
			}

			rep := &harness.Report{
				ID:     "matrix",
				Title:  "Portability matrix",
				Tables: []*harness.Table{tuned, times},
			}
			rep.AddNote("grid: %d kernels x %d CPU devices (arch.MatrixZoo), tuned per cell", len(entries), len(archs))
			rep.AddNote("portability = harmonic mean over devices of achieved/peak flop efficiency (1.0 = full peak everywhere)")
			rep.AddNote("runtime cells share one execution trace per kernel (internal/replay); -noreplay re-executes per device, byte-identical output")
			return rep, nil
		},
	}
}
