module clperf

go 1.22
