// Package clperf reproduces "OpenCL Performance Evaluation on Modern Multi
// Core CPUs" (Lee, Patel, Nigania, Kim, Kim — IPPS 2013) as a
// self-contained Go library: an OpenCL-shaped runtime over simulated CPU
// and GPU device models, an OpenMP-style comparison runtime, the paper's
// benchmark suite, and a harness that regenerates every table and figure
// of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// modeling substitutions, and EXPERIMENTS.md for paper-vs-measured results.
// The root-level benchmarks (bench_test.go) regenerate each artifact under
// `go test -bench`.
package clperf
